//! Property-based tests for the tensor substrate: algebraic identities of the
//! matrix ops and distributional sanity of the RNG.

use proptest::prelude::*;
use rn_tensor::{Matrix, Prng};

/// Strategy producing a matrix with bounded dimensions and finite values.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Two matrices with an identical shape.
fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        (
            proptest::collection::vec(-10.0f32..10.0, r * c),
            proptest::collection::vec(-10.0f32..10.0, r * c),
        )
            .prop_map(move |(a, b)| (Matrix::from_vec(r, c, a), Matrix::from_vec(r, c, b)))
    })
}

proptest! {
    #[test]
    fn addition_commutes((a, b) in matrix_pair(6)) {
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-5));
    }

    #[test]
    fn hadamard_commutes((a, b) in matrix_pair(6)) {
        prop_assert!(a.mul(&b).approx_eq(&b.mul(&a), 1e-4));
    }

    #[test]
    fn subtract_self_is_zero(a in matrix(6)) {
        let z = a.sub(&a);
        prop_assert!(z.approx_eq(&Matrix::zeros(a.rows(), a.cols()), 0.0));
    }

    #[test]
    fn transpose_involution(a in matrix(6)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_identity(a in matrix(6)) {
        let id = Matrix::identity(a.cols());
        prop_assert!(a.matmul(&id).approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(5), cols in 1usize..5) {
        // (A B)^T == B^T A^T
        let mut rng = Prng::new(a.rows() as u64 + cols as u64);
        let b = rng.uniform_matrix(a.cols(), cols, -1.0, 1.0);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_nt_consistent(a in matrix(5), n in 1usize..5) {
        let mut rng = Prng::new(17);
        let b = rng.uniform_matrix(a.rows(), n, -1.0, 1.0);
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        let c = rng.uniform_matrix(n, a.cols(), -1.0, 1.0);
        prop_assert!(a.matmul_nt(&c).approx_eq(&a.matmul(&c.transpose()), 1e-3));
    }

    #[test]
    fn sum_rows_then_total_matches_sum(a in matrix(6)) {
        let by_rows = a.sum_rows().sum();
        prop_assert!((by_rows - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }

    #[test]
    fn segment_sum_preserves_total(a in matrix(6), nseg in 1usize..4) {
        let segs: Vec<usize> = (0..a.rows()).map(|i| i % nseg).collect();
        let s = a.segment_sum(&segs, nseg);
        prop_assert!((s.sum() - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }

    #[test]
    fn gather_then_segment_sum_roundtrip(a in matrix(5)) {
        // Gathering each row once and scattering back to its origin is identity.
        let idx: Vec<usize> = (0..a.rows()).collect();
        let g = a.gather_rows(&idx);
        let back = g.segment_sum(&idx, a.rows());
        prop_assert!(back.approx_eq(&a, 1e-5));
    }

    #[test]
    fn concat_slice_roundtrip((a, b) in matrix_pair(5)) {
        let cat = a.concat_cols(&b);
        prop_assert!(cat.slice_cols(0, a.cols()).approx_eq(&a, 0.0));
        prop_assert!(cat.slice_cols(a.cols(), a.cols() + b.cols()).approx_eq(&b, 0.0));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in matrix_pair(5)) {
        let lhs = a.add(&b).scale(2.5);
        let rhs = a.scale(2.5).add(&b.scale(2.5));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let parent = Prng::new(seed);
        let mut a = parent.split(stream);
        let mut b = parent.split(stream);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn percentile_bounded(mut values in proptest::collection::vec(-100.0f64..100.0, 1..50), p in 0.0f64..100.0) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = rn_tensor::stats::percentile_sorted(&values, p);
        prop_assert!(v >= values[0] - 1e-9 && v <= values[values.len() - 1] + 1e-9);
    }

    #[test]
    fn cdf_is_monotone(values in proptest::collection::vec(-50.0f64..50.0, 1..60)) {
        let cdf = rn_tensor::stats::EmpiricalCdf::new(&values);
        let series = cdf.series(16);
        for w in series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!(series.last().unwrap().1 >= 1.0 - 1e-12);
    }

    // ---- Tiled-kernel equivalence: the unrolled/blocked kernels must agree
    // ---- with the naive reference implementations on arbitrary shapes.

    #[test]
    fn tiled_matmul_matches_reference(
        (m, k, n) in (1usize..12, 1usize..20, 1usize..20),
        seed in any::<u64>(),
    ) {
        let mut rng = Prng::new(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);
        prop_assert!(a.matmul(&b).approx_eq(&a.matmul_reference(&b), 1e-3));
    }

    #[test]
    fn tiled_matmul_tn_matches_reference(
        (k, m, n) in (1usize..20, 1usize..12, 1usize..20),
        seed in any::<u64>(),
    ) {
        let mut rng = Prng::new(seed);
        let a = rng.uniform_matrix(k, m, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.matmul_tn_reference(&b), 1e-3));
    }

    #[test]
    fn tiled_matmul_nt_matches_reference(
        (m, k, n) in (1usize..12, 1usize..20, 1usize..20),
        seed in any::<u64>(),
    ) {
        let mut rng = Prng::new(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(n, k, -2.0, 2.0);
        prop_assert!(a.matmul_nt(&b).approx_eq(&a.matmul_nt_reference(&b), 1e-3));
    }

    #[test]
    fn into_and_acc_kernels_compose(
        (m, k, n) in (1usize..10, 1usize..16, 1usize..16),
        seed in any::<u64>(),
    ) {
        let mut rng = Prng::new(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let expect = a.matmul_reference(&b);
        let mut out = rng.uniform_matrix(m, n, -9.0, 9.0); // garbage to overwrite
        a.matmul_into(&b, &mut out);
        prop_assert!(out.approx_eq(&expect, 1e-3));
        a.matmul_acc(&b, &mut out); // out = 2*expect
        prop_assert!(out.approx_eq(&expect.scale(2.0), 1e-3));
    }
}
