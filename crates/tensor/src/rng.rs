//! Deterministic, splittable random-number streams.
//!
//! Every experiment in this workspace is fully determined by a single `u64`
//! seed. [`Prng`] wraps the `rand` crate's `StdRng` and adds:
//!
//! - **stream splitting** ([`Prng::split`]): derive independent child streams
//!   from a parent seed so that, e.g., sample *i* of a dataset is reproducible
//!   in isolation regardless of how many samples are generated in parallel;
//! - the distributions the simulator and the initializers need but that
//!   `rand` 0.8 core does not ship (normal via Box–Muller, exponential via
//!   inverse transform).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — used to derive child seeds. This is the standard seed
/// scrambler recommended for seeding from sequential integers.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic random stream with explicit seed provenance.
#[derive(Debug, Clone)]
pub struct Prng {
    rng: StdRng,
    seed: u64,
}

impl Prng {
    /// Create a stream from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream identified by `stream_id`.
    ///
    /// Children with different ids (or from parents with different seeds) are
    /// statistically independent; the derivation is pure, so it can be called
    /// from parallel workers without coordination.
    pub fn split(&self, stream_id: u64) -> Prng {
        let child_seed =
            splitmix64(self.seed ^ splitmix64(stream_id.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)));
        Prng::new(child_seed)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`. Panics if `lo > hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform `f64` in `[0, 1)`, excluding exactly 0 (safe for `ln`).
    #[inline]
    pub fn uniform_pos_f64(&mut self) -> f64 {
        loop {
            let u: f64 = self.rng.gen();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.rng.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "int_range: empty range {lo}..{hi}");
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = self.uniform_pos_f64();
        let u2: f64 = self.rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Exponential with the given rate `lambda` (mean `1/lambda`), in f64 for
    /// simulator timestamps. Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda > 0.0,
            "exponential: rate must be positive, got {lambda}"
        );
        -self.uniform_pos_f64().ln() / lambda
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Choose a uniformly random element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fill a matrix with i.i.d. uniform values in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> crate::Matrix {
        crate::Matrix::from_fn(rows, cols, |_, _| self.uniform_range(lo, hi))
    }

    /// Fill a matrix with i.i.d. normal values.
    pub fn normal_matrix(
        &mut self,
        rows: usize,
        cols: usize,
        mean: f32,
        std_dev: f32,
    ) -> crate::Matrix {
        crate::Matrix::from_fn(rows, cols, |_, _| self.normal_with(mean, std_dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn split_is_pure_and_distinct() {
        let parent = Prng::new(7);
        let mut c1 = parent.split(0);
        let mut c1b = parent.split(0);
        let mut c2 = parent.split(1);
        assert_eq!(c1.uniform(), c1b.uniform(), "same stream id must reproduce");
        // child 0 and child 1 should not be identical streams
        let mut diffs = 0;
        let mut c1 = parent.split(0);
        for _ in 0..32 {
            if c1.uniform() != c2.uniform() {
                diffs += 1;
            }
        }
        assert!(diffs > 28);
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = Prng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Prng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "normal mean drifted: {mean}");
        assert!((var - 1.0).abs() < 0.08, "normal variance drifted: {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Prng::new(13);
        let lambda = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / lambda).abs() < 0.01,
            "exp mean {mean} vs {}",
            1.0 / lambda
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Prng::new(17);
        for _ in 0..10_000 {
            assert!(rng.exponential(0.5) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Prng::new(23);
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn index_covers_range() {
        let mut rng = Prng::new(29);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
