//! Scalar activation functions and their derivatives.
//!
//! Shared between the autograd tape ops (`rn-autograd`) and the layer
//! implementations in `rn-nn`, so forward values and adjoints can never drift
//! apart. Lives in the tensor crate so the SIMD kernels in [`crate::simd`]
//! can vectorize the *same* definitions the scalar code uses — the 8-lane
//! bodies replicate these functions operation for operation.
//!
//! ## Fast transcendentals
//!
//! Profiling the RouteNet hot loop showed libm `expf`/`tanhf` dominating the
//! GRU sweep (three gate activations over every path row at every sequence
//! position). [`sigmoid`], [`tanh`] and [`selu`] therefore use [`fast_exp`],
//! a branch-free polynomial `2^f`-with-exponent-bits construction whose
//! relative error is below ~1e-7 over the whole clamped range — far inside
//! the 1e-5 equivalence budget the golden tests enforce, and smooth enough
//! for the finite-difference gradient checks. The libm-backed `*_precise`
//! forms are kept: the seed-faithful reference mode (the benchmark "before")
//! and any caller needing last-bit accuracy use those.

/// SELU scale constant (Klambauer et al., 2017).
pub const SELU_LAMBDA: f32 = 1.050_700_9;
/// SELU alpha constant.
pub const SELU_ALPHA: f32 = 1.673_263_2;

// Constants of the fast_exp argument reduction, shared with the AVX2 lane
// bodies in `crate::simd::activations` (which must use bit-identical values).
pub(crate) const LN2_HI: f32 = 0.693_145_75;
pub(crate) const LN2_LO: f32 = 1.428_606_8e-6;
pub(crate) const ROUND_MAGIC: f32 = 12_582_912.0;
pub(crate) const EXP_CLAMP: f32 = 87.0;
pub(crate) const TANH_CLAMP: f32 = 9.0;

/// Fast `e^x` with ~1e-7 relative error.
///
/// Decomposes `x·log2(e) = n + f` with `n = round(·)` and `|f| <= 0.5`,
/// evaluates `2^f` by a degree-6 Taylor/minimax polynomial, and applies
/// `2^n` by constructing the float's exponent bits directly. Branch-free
/// (the clamp handles under/overflow), so it autovectorizes inside
/// `map_inplace` loops.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    // Cody–Waite split of ln2: the high part has trailing zero mantissa
    // bits, so `n * LN2_HI` is exact for |n| <= 128 and the argument
    // reduction below loses no precision.
    //
    // Round-to-nearest via the 1.5·2^23 magic-number trick: baseline x86-64
    // has no SSE4.1 roundps, so `f32::round` would become a libm call per
    // element and block autovectorization of the surrounding loops.
    //
    // exp(±87) is comfortably inside f32 normal range after the 2^n split.
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    let n = (x * std::f32::consts::LOG2_E + ROUND_MAGIC) - ROUND_MAGIC;
    let g = x - n * LN2_HI - n * LN2_LO; // |g| <= ln2/2 (+1 ulp of rounding)
                                         // e^g by degree-6 Taylor; worst-case relative error ~1.2e-7 at the
                                         // reduction boundary.
    let p = 1.0
        + g * (1.0
            + g * (0.5
                + g * (1.0 / 6.0 + g * (1.0 / 24.0 + g * (1.0 / 120.0 + g * (1.0 / 720.0))))));
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    scale * p
}

/// Logistic sigmoid on the fast-exp path (the training hot loop).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    // Clamp keeps fast_exp in range; sigmoid is flat to f32 precision there.
    let e = fast_exp(-x);
    1.0 / (1.0 + e)
}

/// Libm-backed sigmoid — the seed-faithful reference form.
#[inline]
pub fn sigmoid_precise(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed through its output `y = sigmoid(x)`.
#[inline]
pub fn sigmoid_deriv_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Hyperbolic tangent on the fast-exp path (the training hot loop).
///
/// `tanh(x) = (e^{2x} − 1) / (e^{2x} + 1)`; saturates (to within f32) past
/// `|x| > 9`, which the clamp makes explicit. Always inside `(-1, 1)`.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let e2 = fast_exp(2.0 * x);
    (e2 - 1.0) / (e2 + 1.0)
}

/// Libm-backed tanh — the seed-faithful reference form.
#[inline]
pub fn tanh_precise(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed through its output `y = tanh(x)`.
#[inline]
pub fn tanh_deriv_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU with the `x = 0` subgradient fixed at 0.
#[inline]
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Scaled exponential linear unit — the readout activation used by RouteNet.
#[inline]
pub fn selu(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA * x
    } else {
        SELU_LAMBDA * SELU_ALPHA * (fast_exp(x) - 1.0)
    }
}

/// Libm-backed SELU — the seed-faithful reference form.
#[inline]
pub fn selu_precise(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA * x
    } else {
        SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
    }
}

/// Derivative of SELU as a function of the input.
#[inline]
pub fn selu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA
    } else {
        SELU_LAMBDA * SELU_ALPHA * fast_exp(x)
    }
}

/// Libm-backed SELU derivative — the seed-faithful reference form.
#[inline]
pub fn selu_deriv_precise(x: f32) -> f32 {
    if x > 0.0 {
        SELU_LAMBDA
    } else {
        SELU_LAMBDA * SELU_ALPHA * x.exp()
    }
}

/// Softplus `ln(1 + e^x)`, numerically stable.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Derivative of softplus (= sigmoid).
#[inline]
pub fn softplus_deriv(x: f32) -> f32 {
    sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_deriv(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // stability: no NaN at extremes
        assert!(sigmoid(1e4).is_finite());
        assert!(sigmoid(-1e4).is_finite());
    }

    #[test]
    fn derivative_formulas_match_numeric() {
        for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
            let y = sigmoid(x);
            assert!((sigmoid_deriv_from_output(y) - numeric_deriv(sigmoid, x)).abs() < 1e-3);
            let t = tanh(x);
            assert!((tanh_deriv_from_output(t) - numeric_deriv(tanh, x)).abs() < 1e-3);
            assert!((selu_deriv(x) - numeric_deriv(selu, x)).abs() < 2e-3);
            assert!((softplus_deriv(x) - numeric_deriv(softplus, x)).abs() < 1e-3);
        }
        for &x in &[-1.5f32, 0.5, 2.0] {
            assert!((relu_deriv(x) - numeric_deriv(relu, x)).abs() < 1e-3);
        }
    }

    #[test]
    fn selu_is_continuous_at_zero() {
        assert!((selu(1e-6) - selu(-1e-6)).abs() < 1e-4);
    }

    #[test]
    fn softplus_extremes_are_stable() {
        assert!((softplus(50.0) - 50.0).abs() < 1e-3);
        assert!(softplus(-50.0) >= 0.0);
        assert!(softplus(-50.0) < 1e-6);
    }

    #[test]
    fn fast_exp_tracks_libm_to_1e7_relative() {
        let mut worst = 0.0f32;
        let mut x = -30.0f32;
        while x <= 30.0 {
            let exact = x.exp();
            let fast = fast_exp(x);
            let rel = ((fast - exact) / exact).abs();
            worst = worst.max(rel);
            x += 0.0173;
        }
        // ~2 ulp of f32: argument-reduction + polynomial rounding.
        assert!(worst < 4e-7, "fast_exp worst relative error {worst}");
        assert!(fast_exp(-1000.0) >= 0.0 && fast_exp(-1000.0).is_finite());
        assert!(fast_exp(1000.0).is_finite());
    }

    #[test]
    fn fast_activations_track_precise_forms() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            assert!(
                (sigmoid(x) - sigmoid_precise(x)).abs() < 1e-6,
                "sigmoid at {x}"
            );
            assert!((tanh(x) - tanh_precise(x)).abs() < 1e-6, "tanh at {x}");
            assert!((selu(x) - selu_precise(x)).abs() < 2e-6, "selu at {x}");
            x += 0.0311;
        }
        // tanh stays strictly inside (-1, 1) so GRU states remain bounded.
        for &x in &[-1e4f32, -9.1, 9.1, 1e4] {
            assert!(tanh(x).abs() <= 1.0);
        }
    }
}
