//! # rn-tensor
//!
//! Minimal dense linear-algebra substrate for the RouteNet reproduction.
//!
//! The whole GNN stack (autograd tape, GRU cells, readout MLPs) is built on a
//! single concrete type: [`Matrix`], a row-major dense 2-D array of `f32`.
//! Batches of entities (paths, links, nodes) are rows; features are columns.
//!
//! The crate also provides:
//!
//! - [`rng`]: deterministic, splittable random-number streams plus the
//!   distributions the simulator and the initializers need (uniform, normal,
//!   exponential, Poisson-process inter-arrivals).
//! - [`stats`]: descriptive statistics (mean/variance/percentiles), empirical
//!   CDFs (the output format of the paper's Figure 2) and histograms.
//! - [`activations`]: the scalar activation functions (fast Cody–Waite
//!   transcendentals plus libm-backed `*_precise` references) shared by the
//!   autograd tape and the layer stack.
//! - [`simd`]: runtime-dispatched AVX2 kernels — the matmul bodies in
//!   [`matrix`] and the slice-level activation maps — each bitwise identical
//!   to its scalar form for finite inputs.
//!
//! Design notes: following the smoltcp ethos, this crate favours simplicity
//! and robustness over cleverness — no generic scalar type, no lifetime
//! tricks; every operation validates shapes and panics with a precise message
//! on misuse (shape errors are programming errors, not runtime conditions).
//! The one concession to speed is [`simd`], and it buys none of it with
//! result drift: every vector kernel is pinned bitwise to its scalar loop.

pub mod activations;
pub mod matrix;
pub mod rng;
pub mod simd;
pub mod stats;

pub use matrix::{kernels, Matrix};
pub use rng::Prng;
pub use stats::{empirical_cdf, percentile, Summary};
