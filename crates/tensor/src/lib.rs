//! # rn-tensor
//!
//! Minimal dense linear-algebra substrate for the RouteNet reproduction.
//!
//! The whole GNN stack (autograd tape, GRU cells, readout MLPs) is built on a
//! single concrete type: [`Matrix`], a row-major dense 2-D array of `f32`.
//! Batches of entities (paths, links, nodes) are rows; features are columns.
//!
//! The crate also provides:
//!
//! - [`rng`]: deterministic, splittable random-number streams plus the
//!   distributions the simulator and the initializers need (uniform, normal,
//!   exponential, Poisson-process inter-arrivals).
//! - [`stats`]: descriptive statistics (mean/variance/percentiles), empirical
//!   CDFs (the output format of the paper's Figure 2) and histograms.
//!
//! Design notes: following the smoltcp ethos, this crate favours simplicity and
//! robustness over cleverness — there is no SIMD, no generic scalar type, no
//! lifetime tricks; every operation validates shapes and panics with a precise
//! message on misuse (shape errors are programming errors, not runtime
//! conditions).

pub mod matrix;
pub mod rng;
pub mod stats;

pub use matrix::{kernels, Matrix};
pub use rng::Prng;
pub use stats::{empirical_cdf, percentile, Summary};
