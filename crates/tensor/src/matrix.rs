//! Dense row-major 2-D `f32` matrix.
//!
//! [`Matrix`] is the single tensor type used throughout the workspace. Rows are
//! entities (paths, links, nodes, samples); columns are features. All shape
//! mismatches panic: a wrong shape is a bug in the caller, never a recoverable
//! runtime condition.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:.4}"))
                .collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of rows. Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An n x 1 column vector.
    pub fn column_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`. Panics on out-of-bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::get({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`. Panics on out-of-bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::set({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "Matrix::row({r}) out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "Matrix::row_mut({r}) out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "Matrix::col({c}) out of bounds for {} cols",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Add `other` into `self` in place. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other`, in place. Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) {
        self.assert_same_shape(other, "add_scaled");
        axpy1(&mut self.data, scale, &other.data);
    }

    /// BLAS-style `self += a * x` (alias of [`Matrix::add_scaled`] under the
    /// conventional name).
    pub fn axpy(&mut self, a: f32, x: &Self) {
        self.add_scaled(x, a);
    }

    /// Multiply every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise (Hadamard) product in place. Panics on shape mismatch.
    pub fn mul_assign_elem(&mut self, other: &Self) {
        self.assert_same_shape(other, "mul_assign_elem");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Broadcast-add a 1 x cols row vector to every row, in place.
    pub fn add_row_broadcast_assign(&mut self, bias: &Self) {
        assert_eq!(
            bias.rows, 1,
            "add_row_broadcast_assign: bias must be a row vector"
        );
        assert_eq!(
            bias.cols, self.cols,
            "add_row_broadcast_assign: width mismatch"
        );
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Multiply each row by the matching entry of an n x 1 column vector,
    /// in place (the allocation-free form of [`Matrix::mul_col_broadcast`]).
    pub fn mul_col_broadcast_assign(&mut self, col: &Self) {
        assert_eq!(
            col.cols, 1,
            "mul_col_broadcast_assign: expected column vector"
        );
        assert_eq!(
            col.rows, self.rows,
            "mul_col_broadcast_assign: row mismatch"
        );
        for r in 0..self.rows {
            let w = col.data[r];
            for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
                *v *= w;
            }
        }
    }

    /// Multiply every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Add `s` to every element, returning a new matrix.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Broadcast-add a 1 x cols row vector to every row.
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(
            bias.rows, 1,
            "add_row_broadcast: bias must be a row vector, got {}x{}",
            bias.rows, bias.cols
        );
        assert_eq!(
            bias.cols, self.cols,
            "add_row_broadcast: bias has {} cols, matrix has {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Linear algebra
    //
    // The matmul family is the training hot path: every GRU gate and every
    // backward adjoint runs through these three kernels. Each comes in three
    // forms: allocating (`matmul`), overwrite-into (`matmul_into`, writes a
    // caller-provided buffer so pooled tapes never re-allocate), and
    // accumulate-into (`matmul_acc`, `out += a·b`, which fuses the
    // `grad += partial` pattern of reverse-mode autodiff into the kernel).
    // The kernels unroll the reduction dimension four-wide and walk rows with
    // `chunks_exact`, which is what lets LLVM vectorize the inner loops.
    // ------------------------------------------------------------------

    fn assert_matmul_shapes(&self, other: &Self) -> (usize, usize, usize) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        (self.rows, self.cols, other.cols)
    }

    /// Matrix product `self * other` (`m x k` times `k x n` -> `m x n`).
    pub fn matmul(&self, other: &Self) -> Self {
        let (m, _, n) = self.assert_matmul_shapes(other);
        let mut out = Self {
            rows: m,
            cols: n,
            data: vec![0.0; m * n],
        };
        self.matmul_acc(other, &mut out);
        out
    }

    /// `out = self * other`, overwriting `out` (shape-checked).
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        let (m, _, n) = self.assert_matmul_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_into: bad output shape");
        out.data.fill(0.0);
        self.matmul_acc(other, out);
    }

    /// `out += self * other` (the fused form backward passes use).
    ///
    /// 2-row × 4-k register blocking: each sweep over `other`'s rows feeds
    /// two output rows, halving B-matrix traffic, and four reduction steps
    /// fuse into one pass over each output row. On x86-64 the same body is
    /// also compiled with AVX2 enabled and dispatched at runtime — identical
    /// per-element arithmetic (vector width only changes lane packing), so
    /// results are bitwise equal across the two paths.
    pub fn matmul_acc(&self, other: &Self, out: &mut Self) {
        let (m, k, n) = self.assert_matmul_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_acc: bad output shape");
        kernels::matmul_acc(&self.data, &other.data, m, k, n, &mut out.data);
    }

    /// Row-range form of [`Matrix::matmul_acc`]:
    /// `out[row_lo..row_hi] += self[row_lo..row_hi] · other`, touching no
    /// other output row. Each output row is accumulated in exactly the same
    /// per-element order as the full kernel, so computing a matrix in
    /// disjoint row ranges (e.g. one per megabatch shard, possibly on
    /// different threads) is **bitwise identical** to one full call — the
    /// property the sharded forward/backward passes rest on.
    pub fn matmul_acc_rows(&self, other: &Self, out: &mut Self, row_lo: usize, row_hi: usize) {
        let (m, k, n) = self.assert_matmul_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_acc_rows: bad output shape");
        assert!(
            row_lo <= row_hi && row_hi <= m,
            "matmul_acc_rows: bad row range {row_lo}..{row_hi} for {m} rows"
        );
        kernels::matmul_acc(
            &self.data[row_lo * k..row_hi * k],
            &other.data,
            row_hi - row_lo,
            k,
            n,
            &mut out.data[row_lo * n..row_hi * n],
        );
    }

    fn assert_tn_shapes(&self, other: &Self) -> (usize, usize, usize) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        (self.rows, self.cols, other.cols)
    }

    /// `self^T * other` without materializing the transpose
    /// (`k x m`^T times `k x n` -> `m x n`). Used by autograd backward passes.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        let (_, m, n) = self.assert_tn_shapes(other);
        let mut out = Self {
            rows: m,
            cols: n,
            data: vec![0.0; m * n],
        };
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `out = self^T * other`, overwriting `out`.
    pub fn matmul_tn_into(&self, other: &Self, out: &mut Self) {
        let (_, m, n) = self.assert_tn_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_tn_into: bad output shape");
        out.data.fill(0.0);
        self.matmul_tn_acc(other, out);
    }

    /// `out += self^T * other` (fused gradient accumulation for kernels).
    /// Runtime-dispatched to an AVX2 build of the same body on x86-64.
    pub fn matmul_tn_acc(&self, other: &Self, out: &mut Self) {
        let (k, m, n) = self.assert_tn_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_tn_acc: bad output shape");
        kernels::matmul_tn_acc(&self.data, &other.data, k, m, n, &mut out.data);
    }

    /// Shared-dimension-range form of [`Matrix::matmul_tn_acc`]:
    /// `out += self[row_lo..row_hi]^T · other[row_lo..row_hi]`. Restricting
    /// the reduction to a row range is what per-shard gradient *partials*
    /// are made of: each shard reduces its own row range into a zeroed
    /// buffer, and the partials are merged in fixed shard order.
    pub fn matmul_tn_acc_rows(&self, other: &Self, out: &mut Self, row_lo: usize, row_hi: usize) {
        let (k, m, n) = self.assert_tn_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_tn_acc_rows: bad output shape");
        assert!(
            row_lo <= row_hi && row_hi <= k,
            "matmul_tn_acc_rows: bad row range {row_lo}..{row_hi} for {k} rows"
        );
        kernels::matmul_tn_acc(
            &self.data[row_lo * m..row_hi * m],
            &other.data[row_lo * n..row_hi * n],
            row_hi - row_lo,
            m,
            n,
            &mut out.data,
        );
    }

    fn assert_nt_shapes(&self, other: &Self) -> (usize, usize, usize) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: col counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        (self.rows, self.cols, other.rows)
    }

    /// `self * other^T` without materializing the transpose
    /// (`m x k` times `n x k`^T -> `m x n`). Used by autograd backward passes.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        let (m, _, n) = self.assert_nt_shapes(other);
        let mut out = Self {
            rows: m,
            cols: n,
            data: vec![0.0; m * n],
        };
        self.matmul_nt_acc(other, &mut out);
        out
    }

    /// `out = self * other^T`, overwriting `out`.
    pub fn matmul_nt_into(&self, other: &Self, out: &mut Self) {
        let (m, _, n) = self.assert_nt_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_nt_into: bad output shape");
        out.data.fill(0.0);
        self.matmul_nt_acc(other, out);
    }

    /// `out += self * other^T`.
    ///
    /// Materializes `other`'s transpose once and runs the blocked row-major
    /// kernel: at the backward hot shapes (`other` is a small weight matrix;
    /// the shared dimension is short) this beats dot-product loops by ~3x —
    /// short dot products spend their time on horizontal reduction, while
    /// the transposed form streams full output rows.
    pub fn matmul_nt_acc(&self, other: &Self, out: &mut Self) {
        let (m, _, n) = self.assert_nt_shapes(other);
        assert_eq!(out.shape(), (m, n), "matmul_nt_acc: bad output shape");
        let bt = other.transpose();
        self.matmul_acc(&bt, out);
    }

    /// Reference `self * other` — the pre-refactor kernel, kept verbatim.
    ///
    /// Serves two purposes: the oracle the property tests compare the
    /// unrolled kernels against, and the faithful "before" side of the
    /// training-step benchmark (via the autograd reference mode).
    pub fn matmul_reference(&self, other: &Self) -> Self {
        let (m, k, n) = self.assert_matmul_shapes(other);
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order: the innermost loop walks both `other` and `out`
        // contiguously.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Self {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Reference `self^T * other` (see [`Matrix::matmul_reference`]).
    pub fn matmul_tn_reference(&self, other: &Self) -> Self {
        let (k, m, n) = self.assert_tn_shapes(other);
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Self {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Reference `self * other^T` (see [`Matrix::matmul_reference`]).
    pub fn matmul_nt_reference(&self, other: &Self) -> Self {
        let (m, k, n) = self.assert_nt_shapes(other);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Self {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Write the transpose into a caller-provided (pooled) matrix.
    pub fn transpose_into(&self, out: &mut Self) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: bad output shape"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum, returned as a 1 x cols row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Self {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Row-wise sum, returned as an n x 1 column vector.
    pub fn sum_cols(&self) -> Self {
        let data = (0..self.rows).map(|r| self.row(r).iter().sum()).collect();
        Self {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Largest absolute element. Zero for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    // ------------------------------------------------------------------
    // Structural operations (the GNN message-passing primitives)
    // ------------------------------------------------------------------

    /// Gather rows: `out[i] = self[indices[i]]`. Panics on out-of-range indices.
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &idx in indices {
            assert!(
                idx < self.rows,
                "gather_rows: index {idx} out of range for {} rows",
                self.rows
            );
            data.extend_from_slice(self.row(idx));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Segment sum (scatter-add of rows): for each input row `i`,
    /// `out[segments[i]] += self[i]`. `num_segments` fixes the output row count
    /// so empty segments yield zero rows. This is the aggregation primitive of
    /// RouteNet's link and node updates.
    pub fn segment_sum(&self, segments: &[usize], num_segments: usize) -> Self {
        assert_eq!(
            segments.len(),
            self.rows,
            "segment_sum: {} segment ids for {} rows",
            segments.len(),
            self.rows
        );
        let mut out = Self::zeros(num_segments, self.cols);
        for (i, &s) in segments.iter().enumerate() {
            assert!(
                s < num_segments,
                "segment_sum: segment id {s} out of range {num_segments}"
            );
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            let dst = &mut out.data[s * self.cols..(s + 1) * self.cols];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`. Panics on row-count mismatch.
    pub fn concat_cols(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Vertical concatenation `[self; other]`. Panics on column-count mismatch.
    pub fn concat_rows(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "concat_rows: col counts differ ({} vs {})",
            self.cols, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copy of the column range `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols: bad range {start}..{end} for {} cols",
            self.cols
        );
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of the row range `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: bad range {start}..{end} for {} rows",
            self.rows
        );
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Multiply each row by the corresponding entry of an n x 1 mask/weight
    /// column vector. Used for masking padded positions in batched sequences.
    pub fn mul_col_broadcast(&self, col: &Self) -> Self {
        assert_eq!(
            col.cols, 1,
            "mul_col_broadcast: expected column vector, got {}x{}",
            col.rows, col.cols
        );
        assert_eq!(
            col.rows, self.rows,
            "mul_col_broadcast: {} weights for {} rows",
            col.rows, self.rows
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            let w = col.data[r];
            for v in out.row_mut(r) {
                *v *= w;
            }
        }
        out
    }

    /// Split the backing buffer into contiguous row blocks at `bounds`
    /// (ascending, `bounds[0] == 0`, `bounds.last() == rows`). Block `i`
    /// covers rows `bounds[i]..bounds[i+1]`; empty blocks are fine.
    ///
    /// The blocks are independent `&mut [f32]`s (and `Send`), so disjoint
    /// row ranges of one matrix can be written from different threads with
    /// no unsafe code at the call site — the foundation of the sharded
    /// megabatch kernels.
    pub fn row_blocks_mut(&mut self, bounds: &[usize]) -> Vec<&mut [f32]> {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&self.rows),
            "row_blocks_mut: bounds must span 0..rows ({bounds:?} for {} rows)",
            self.rows
        );
        let cols = self.cols;
        let mut blocks = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [f32] = &mut self.data;
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "row_blocks_mut: bounds must be ascending");
            let (block, tail) = rest.split_at_mut((w[1] - w[0]) * cols);
            blocks.push(block);
            rest = tail;
        }
        blocks
    }

    // ------------------------------------------------------------------
    // Comparisons
    // ------------------------------------------------------------------

    /// True when both matrices have the same shape and all elements differ by
    /// at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

/// Slice-level matmul kernels with runtime AVX2 dispatch.
///
/// The [`Matrix`] methods delegate here; the sharded autograd kernels call
/// these directly on disjoint sub-slices produced by
/// [`Matrix::row_blocks_mut`], so several threads can fill one output matrix
/// without aliasing `&mut Matrix`. Per output row the accumulation order is
/// independent of how rows are grouped into calls (the 2-row block and the
/// 1-row tail evaluate each element with the same chained expression), so
/// any row-range decomposition of `matmul_acc` is bitwise identical to one
/// full call.
pub mod kernels {
    /// `out += a·b` where `a` is `m x k`, `b` is `k x n`, `out` is `m x n`,
    /// all row-major slices.
    pub fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        #[cfg(target_arch = "x86_64")]
        if super::simd::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { super::simd::matmul_acc_avx2(a, b, m, k, n, out) };
            return;
        }
        super::matmul_acc_body(a, b, m, k, n, out);
    }

    /// `out += a^T·b` where `a` is `k x m`, `b` is `k x n`, `out` is `m x n`.
    pub fn matmul_tn_acc(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        #[cfg(target_arch = "x86_64")]
        if super::simd::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { super::simd::matmul_tn_acc_avx2(a, b, k, m, n, out) };
            return;
        }
        super::matmul_tn_acc_body(a, b, k, m, n, out);
    }

    /// Ordered partial reduction: `dst[i] += partials[0][offset + i] +
    /// partials[1][offset + i] + ...`, accumulating the partials in slice
    /// order for every element.
    ///
    /// This is how per-shard parameter-gradient partials merge into the one
    /// true gradient: `dst` is a chunk of the gradient buffer starting at
    /// `offset`, `partials` are the full per-shard partial buffers in
    /// canonical (sample) order. Because each element's additions happen in
    /// partial order regardless of how the element range is chunked, fanning
    /// disjoint chunks out to different threads produces bitwise-identical
    /// results to one sequential pass — the property the parallel gradient
    /// reduction rests on.
    pub fn reduce_partials(dst: &mut [f32], offset: usize, partials: &[&[f32]]) {
        let len = dst.len();
        for p in partials {
            debug_assert!(p.len() >= offset + len);
            for (d, &v) in dst.iter_mut().zip(&p[offset..offset + len]) {
                *d += v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized kernel helpers
// ---------------------------------------------------------------------------

const LANES: usize = 8;

/// `out += a·b` (row-major, `m x k` times `k x n`), 2-row × 4-k register
/// blocked. `#[inline(always)]` so the AVX2 wrapper in [`simd`] recompiles
/// this exact body with wider vectors — per-element arithmetic is identical,
/// so both builds produce bitwise-equal results.
#[inline(always)]
fn matmul_acc_body(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let mut i = 0;
    while i + 2 <= m {
        let (o01, _) = out[i * n..].split_at_mut(2 * n);
        let (o0, o1) = o01.split_at_mut(n);
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut kk = 0;
        while kk + 4 <= k {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let (c00, c01, c02, c03) = (a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]);
            let (c10, c11, c12, c13) = (a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]);
            for j in 0..n {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                o0[j] += c00 * v0 + c01 * v1 + c02 * v2 + c03 * v3;
                o1[j] += c10 * v0 + c11 * v1 + c12 * v2 + c13 * v3;
            }
            kk += 4;
        }
        while kk < k {
            let br = &b[kk * n..kk * n + n];
            let (c0, c1) = (a0[kk], a1[kk]);
            for j in 0..n {
                o0[j] += c0 * br[j];
                o1[j] += c1 * br[j];
            }
            kk += 1;
        }
        i += 2;
    }
    if i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..i * n + n];
        let mut chunks = a_row.chunks_exact(4);
        let mut kk = 0;
        for quad in chunks.by_ref() {
            axpy4(
                out_row,
                [quad[0], quad[1], quad[2], quad[3]],
                [
                    &b[kk * n..kk * n + n],
                    &b[(kk + 1) * n..(kk + 1) * n + n],
                    &b[(kk + 2) * n..(kk + 2) * n + n],
                    &b[(kk + 3) * n..(kk + 3) * n + n],
                ],
            );
            kk += 4;
        }
        for &av in chunks.remainder() {
            axpy1(out_row, av, &b[kk * n..kk * n + n]);
            kk += 1;
        }
    }
}

/// `out += a^T·b` (`a` is `k x m`, `b` is `k x n`), 4-k blocked: each sweep
/// over the output serves four shared-dimension rows.
#[inline(always)]
fn matmul_tn_acc_body(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    let mut kk = 0;
    while kk + 4 <= k {
        let a0 = &a[kk * m..kk * m + m];
        let a1 = &a[(kk + 1) * m..(kk + 1) * m + m];
        let a2 = &a[(kk + 2) * m..(kk + 2) * m + m];
        let a3 = &a[(kk + 3) * m..(kk + 3) * m + m];
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        for i in 0..m {
            axpy4(
                &mut out[i * n..i * n + n],
                [a0[i], a1[i], a2[i], a3[i]],
                [b0, b1, b2, b3],
            );
        }
        kk += 4;
    }
    while kk < k {
        let a_row = &a[kk * m..kk * m + m];
        let b_row = &b[kk * n..kk * n + n];
        for (i, &av) in a_row.iter().enumerate() {
            axpy1(&mut out[i * n..i * n + n], av, b_row);
        }
        kk += 1;
    }
}

/// Runtime-dispatched AVX2 builds of the kernel bodies (x86-64 only).
///
/// `#[target_feature(enable = "avx2")]` recompiles the `#[inline(always)]`
/// bodies with 256-bit vectorization. FMA is deliberately **not** enabled:
/// rustc does not contract `a*b + c` on its own, so the AVX2 build performs
/// the same rounding steps as the baseline build and results stay bitwise
/// identical across machines.
#[cfg(target_arch = "x86_64")]
mod simd {
    /// Cached runtime AVX2 detection — the crate-wide gate in
    /// [`crate::simd`], shared with the activation kernels.
    pub use crate::simd::have_avx2;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 (see [`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_acc_avx2(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        super::matmul_acc_body(a, b, m, k, n, out);
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 (see [`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_tn_acc_avx2(
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        n: usize,
        out: &mut [f32],
    ) {
        super::matmul_tn_acc_body(a, b, k, m, n, out);
    }
}

/// `out += c0*b0 + c1*b1 + c2*b2 + c3*b3`, all slices of equal length.
///
/// The four-way fusion means one pass over `out` serves four reduction steps;
/// `chunks_exact` gives LLVM fixed-width bodies it can turn into SIMD.
#[inline]
fn axpy4(out: &mut [f32], c: [f32; 4], b: [&[f32]; 4]) {
    let n = out.len();
    debug_assert!(b.iter().all(|s| s.len() == n));
    let mut oc = out.chunks_exact_mut(LANES);
    let mut b0 = b[0].chunks_exact(LANES);
    let mut b1 = b[1].chunks_exact(LANES);
    let mut b2 = b[2].chunks_exact(LANES);
    let mut b3 = b[3].chunks_exact(LANES);
    for o in oc.by_ref() {
        let (q0, q1) = (b0.next().unwrap(), b1.next().unwrap());
        let (q2, q3) = (b2.next().unwrap(), b3.next().unwrap());
        for j in 0..LANES {
            o[j] += c[0] * q0[j] + c[1] * q1[j] + c[2] * q2[j] + c[3] * q3[j];
        }
    }
    let tail = oc.into_remainder();
    let off = n - tail.len();
    for (j, o) in tail.iter_mut().enumerate() {
        let jj = off + j;
        *o += c[0] * b[0][jj] + c[1] * b[1][jj] + c[2] * b[2][jj] + c[3] * b[3][jj];
    }
}

/// `out += a * b`, equal-length slices.
#[inline]
fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
    let n = out.len();
    debug_assert_eq!(n, b.len());
    let mut oc = out.chunks_exact_mut(LANES);
    let mut bc = b.chunks_exact(LANES);
    for o in oc.by_ref() {
        let q = bc.next().unwrap();
        for j in 0..LANES {
            o[j] += a * q[j];
        }
    }
    let tail = oc.into_remainder();
    let off = n - tail.len();
    for (j, o) in tail.iter_mut().enumerate() {
        *o += a * b[off + j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_shapes() {
        assert_eq!(Matrix::zeros(3, 4).shape(), (3, 4));
        assert_eq!(Matrix::ones(2, 2).sum(), 4.0);
        assert_eq!(Matrix::filled(2, 3, 0.5).sum(), 3.0);
        assert_eq!(Matrix::identity(3).sum(), 3.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::column_vector(&[1.0, 2.0, 3.0]).shape(), (3, 1));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn reduce_partials_is_chunking_invariant() {
        // Summing per-shard partials element-by-element in partial order
        // must give the same bits no matter how the element range is split
        // into chunks — the contract the parallel gradient reduction needs.
        let partials: Vec<Vec<f32>> = (0..5)
            .map(|s| {
                (0..37)
                    .map(|i| ((s * 31 + i * 17) % 13) as f32 / 7.0 - 0.9)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = partials.iter().map(|p| p.as_slice()).collect();
        let mut whole = [0.25f32; 37];
        kernels::reduce_partials(&mut whole, 0, &refs);
        let mut chunked = [0.25f32; 37];
        for (lo, hi) in [(0usize, 10usize), (10, 11), (11, 30), (30, 37)] {
            kernels::reduce_partials(&mut chunked[lo..hi], lo, &refs);
        }
        assert_eq!(
            whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f32);
        assert!(a.matmul(&Matrix::identity(3)).approx_eq(&a, 1e-6));
        assert!(Matrix::identity(3).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-4));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.25);
        let b = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        a.add_scaled(&g, 0.5);
        a.add_scaled(&g, 0.5);
        assert!(a.approx_eq(&g, 1e-6));
    }

    #[test]
    fn bias_broadcast_adds_to_every_row() {
        let m = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = m.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.sum(), 21.0);
        assert!((m.mean() - 3.5).abs() < 1e-6);
        assert_eq!(m.sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_cols().as_slice(), &[6.0, 15.0]);
        assert_eq!(m.max_abs(), 6.0);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn segment_sum_aggregates_and_keeps_empty_segments() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 1.0], vec![3.0, 5.0]]);
        let s = m.segment_sum(&[0, 2, 0], 4);
        assert_eq!(s.row(0), &[4.0, 5.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.row(2), &[2.0, 1.0]);
        assert_eq!(s.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn segment_sum_then_gather_is_identity_for_singleton_segments() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let s = m.segment_sum(&[0, 1, 2, 3, 4], 5);
        assert!(s.approx_eq(&m, 1e-6));
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 3, |r, c| (r * c) as f32);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 5));
        assert!(cat.slice_cols(0, 2).approx_eq(&a, 1e-6));
        assert!(cat.slice_cols(2, 5).approx_eq(&b, 1e-6));

        let v = a.concat_rows(&Matrix::from_fn(1, 2, |_, c| c as f32));
        assert_eq!(v.shape(), (3, 2));
        assert!(v.slice_rows(0, 2).approx_eq(&a, 1e-6));
    }

    #[test]
    fn mul_col_broadcast_masks_rows() {
        let m = Matrix::ones(3, 2);
        let mask = Matrix::column_vector(&[1.0, 0.0, 2.0]);
        let out = m.mul_col_broadcast(&mask);
        assert_eq!(out.row(0), &[1.0, 1.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 1, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_shape_mismatch() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_panics_on_inner_mismatch() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn unrolled_kernels_match_references() {
        // Shapes straddling the unroll width (4) and lane width (8).
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 4, 8), (9, 17, 33), (2, 64, 32)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
            assert!(
                a.matmul(&b).approx_eq(&a.matmul_reference(&b), 1e-3),
                "nn {m}x{k}x{n}"
            );

            let at = Matrix::from_fn(k, m, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
            let bt = Matrix::from_fn(k, n, |r, c| ((r * 7 + c) % 10) as f32 - 5.0);
            assert!(
                at.matmul_tn(&bt)
                    .approx_eq(&at.matmul_tn_reference(&bt), 1e-3),
                "tn {m}x{k}x{n}"
            );

            let bn = Matrix::from_fn(n, k, |r, c| ((r + c * 11) % 12) as f32 - 6.0);
            assert!(
                a.matmul_nt(&bn)
                    .approx_eq(&a.matmul_nt_reference(&bn), 1e-3),
                "nt {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_and_acc_variants_match_allocating_forms() {
        let a = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f32 * 0.25 - 3.0);
        let b = Matrix::from_fn(6, 4, |r, c| (r + c) as f32 * 0.5 - 1.0);
        let expect = a.matmul(&b);

        let mut out = Matrix::filled(5, 4, 9.0); // garbage that must be overwritten
        a.matmul_into(&b, &mut out);
        assert!(out.approx_eq(&expect, 1e-5));

        a.matmul_acc(&b, &mut out); // now out = 2 * expect
        assert!(out.approx_eq(&expect.scale(2.0), 1e-4));

        // at^T * b == a * b, so the tn kernel must reproduce `expect`.
        let at = a.transpose();
        let mut out_tn = Matrix::filled(5, 4, -7.0);
        at.matmul_tn_into(&b, &mut out_tn);
        assert!(out_tn.approx_eq(&at.matmul_tn(&b), 0.0));
        assert!(out_tn.approx_eq(&expect, 1e-4));

        let bt = b.transpose();
        let mut out_nt = Matrix::filled(5, 4, 3.5);
        a.matmul_nt_into(&bt, &mut out_nt);
        assert!(out_nt.approx_eq(&expect, 1e-4));
    }

    #[test]
    fn row_range_matmul_is_bitwise_identical_to_full() {
        // Any partition of the rows must reproduce the full kernel exactly:
        // odd boundaries shift the 2-row blocking phase, which must not
        // change per-row arithmetic.
        for &(m, k, n) in &[(7, 9, 5), (8, 16, 32), (5, 3, 11)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.37 - 2.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.21 - 1.0);
            let mut full = Matrix::zeros(m, n);
            a.matmul_acc(&b, &mut full);
            for bounds in [vec![0, m], vec![0, 1, m], vec![0, 3, 3, m.min(5), m]] {
                let mut pieced = Matrix::zeros(m, n);
                for w in bounds.windows(2) {
                    a.matmul_acc_rows(&b, &mut pieced, w[0], w[1]);
                }
                assert!(
                    pieced.approx_eq(&full, 0.0),
                    "row-range decomposition {bounds:?} diverged for {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn tn_row_range_partials_sum_to_full_reduction() {
        // Per-shard partials merged in order approximate the full reduction
        // (they are NOT bitwise equal — that is exactly why the sharded
        // backward defines partial-merge as its canonical order).
        let (k, m, n) = (10, 6, 4);
        let a = Matrix::from_fn(k, m, |r, c| ((r * 13 + c * 5) % 9) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 7 + c) % 10) as f32 * 0.3 - 1.5);
        let mut full = Matrix::zeros(m, n);
        a.matmul_tn_acc(&b, &mut full);
        let mut merged = Matrix::zeros(m, n);
        for w in [0, 3, 7, k].windows(2) {
            let mut partial = Matrix::zeros(m, n);
            a.matmul_tn_acc_rows(&b, &mut partial, w[0], w[1]);
            merged.add_assign(&partial);
        }
        assert!(merged.approx_eq(&full, 1e-4));
        // And the partial-merge itself is deterministic: recompute == equal.
        let mut again = Matrix::zeros(m, n);
        for w in [0, 3, 7, k].windows(2) {
            let mut partial = Matrix::zeros(m, n);
            a.matmul_tn_acc_rows(&b, &mut partial, w[0], w[1]);
            again.add_assign(&partial);
        }
        assert!(again.approx_eq(&merged, 0.0));
    }

    #[test]
    fn row_blocks_cover_the_matrix_disjointly() {
        let mut m = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let blocks = m.row_blocks_mut(&[0, 2, 2, 5, 6]);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].len(), 6);
        assert_eq!(blocks[1].len(), 0);
        assert_eq!(blocks[2].len(), 9);
        assert_eq!(blocks[3].len(), 3);
        assert_eq!(blocks[3][0], 15.0);
        for b in blocks {
            for v in b.iter_mut() {
                *v += 1.0;
            }
        }
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(5, 2), 18.0);
    }

    #[test]
    #[should_panic(expected = "bounds must span")]
    fn row_blocks_reject_partial_bounds() {
        let mut m = Matrix::zeros(4, 2);
        let _ = m.row_blocks_mut(&[0, 2]);
    }

    #[test]
    fn inplace_elementwise_ops() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.scale_inplace(2.0);
        assert_eq!(m.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        m.axpy(0.5, &Matrix::ones(2, 2));
        assert_eq!(m.as_slice(), &[2.5, 4.5, 6.5, 8.5]);
        m.mul_assign_elem(&Matrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, -1.0]));
        assert_eq!(m.as_slice(), &[5.0, 0.0, 6.5, -8.5]);

        let mut b = Matrix::zeros(3, 2);
        b.add_row_broadcast_assign(&Matrix::row_vector(&[1.0, -2.0]));
        assert_eq!(b.row(2), &[1.0, -2.0]);
        b.mul_col_broadcast_assign(&Matrix::column_vector(&[1.0, 0.0, 2.0]));
        assert_eq!(b.row(0), &[1.0, -2.0]);
        assert_eq!(b.row(1), &[0.0, 0.0]);
        assert_eq!(b.row(2), &[2.0, -4.0]);
    }
}
