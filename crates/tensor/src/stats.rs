//! Descriptive statistics and empirical CDFs.
//!
//! The paper's headline result (Figure 2) is a CDF of relative prediction
//! errors; this module provides the CDF machinery plus the summary statistics
//! (mean/median/p90/p95) the evaluation harness reports alongside it.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (p50).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Compute summary statistics. Returns a zeroed summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Summary::of: NaN in input"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// Percentile (0..=100) with linear interpolation. Sorts a copy of the input.
/// Panics on empty input or NaN values.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile: empty input");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice with linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile_sorted: empty input");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile_sorted: p={p} out of [0,100]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// An empirical cumulative distribution function.
///
/// Built from a sample; evaluable at arbitrary points and exportable as an
/// `(x, F(x))` series for plotting — the exact artifact behind Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Build from a sample. Panics on empty input or NaN values.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "EmpiricalCdf::new: empty input");
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("EmpiricalCdf::new: NaN in input"));
        Self { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)` = fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the number of elements < x or <= x depending
        // on the predicate; we want P(X <= x), so count elements <= x.
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value v with `F(v) >= q`, `q` in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile: q={q} out of (0,1]");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Export `points` evenly spaced `(x, F(x))` pairs across the sample range.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "series: need at least 2 points");
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                // Pin the endpoints exactly: (hi-lo)*k/k may round below hi,
                // which would make F(last point) < 1.
                let x = if i == 0 {
                    lo
                } else if i == points - 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }

    /// Export the CDF evaluated at the given x positions.
    pub fn series_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// The underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Convenience: build an empirical CDF from a sample.
pub fn empirical_cdf(values: &[f64]) -> EmpiricalCdf {
    EmpiricalCdf::new(values)
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range values clamped
/// into the edge bins. Used by dataset diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram::new: need at least one bin");
        assert!(hi > lo, "Histogram::new: hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, fraction)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&v, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_eval_monotone_and_bounded() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(99.0), 1.0);
    }

    #[test]
    fn cdf_quantile_is_inverse() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_series_spans_range() {
        let cdf = EmpiricalCdf::new(&[0.0, 10.0]);
        let series = cdf.series(11);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[10].0, 10.0);
        assert_eq!(series[10].1, 1.0);
        // monotone non-decreasing in F
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(-5.0); // clamped into first bin
        h.record(50.0); // clamped into last bin
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        let norm = h.normalized();
        let total_frac: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((total_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn cdf_rejects_empty() {
        let _ = EmpiricalCdf::new(&[]);
    }
}
