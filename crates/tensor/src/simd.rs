//! Runtime-dispatched SIMD kernels for the bulk activation maps.
//!
//! The matmul kernels in [`crate::matrix`] already recompile their bodies
//! with AVX2; this module extends the same treatment to the transcendental
//! activation maps that bound the fused GRU sweep once matmuls are fast:
//! 8-lane `_mm256` versions of the branch-free Cody–Waite
//! [`fast_exp`](crate::activations::fast_exp) construction plus the
//! sigmoid/tanh/SELU forms and their derivative-times-adjoint fusions, with
//! a scalar tail per row/slice.
//!
//! ## Bitwise contract
//!
//! Every AVX2 body performs, per element, *exactly* the operations of the
//! matching `*_scalar` form in the same order: the clamp is `max(min(x, hi),
//! lo)`, the polynomial is the same nested chain, negation is a sign-bit
//! XOR, and `2^n` is built from `_mm256_cvttps_epi32` (exact — `n` is
//! integral by construction) and exponent-bit arithmetic. No FMA is used
//! anywhere (rustc never contracts on its own, and the explicit bodies
//! follow suit), so for **finite inputs** the vector and scalar paths are
//! bitwise identical on every machine — the property the kernel-vs-scalar
//! proptests pin. NaN inputs are the one divergence (`f32::clamp` propagates
//! NaN, `_mm256_min_ps`/`max_ps` select the second operand); the tape never
//! feeds NaN through a working model, and a NaN activation means training
//! already diverged.
//!
//! Dispatch is per call through [`have_avx2`], the same cached runtime gate
//! the matmul kernels use; non-x86-64 targets compile the scalar forms only.

use crate::activations as act;

/// Cached runtime AVX2 detection.
#[cfg(target_arch = "x86_64")]
pub fn have_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Cached runtime AVX2 detection (always `false` off x86-64).
#[cfg(not(target_arch = "x86_64"))]
pub fn have_avx2() -> bool {
    false
}

/// Slice-level activation maps with runtime AVX2 dispatch.
///
/// Each kernel has three forms: the dispatching entry point (what the tape
/// ops call), a `*_scalar` reference loop (the bitwise ground truth, also
/// the non-AVX2 fallback), and — on x86-64 — an `avx2::*` build. The
/// dispatchers assert shape compatibility; the bodies assume it.
pub mod activations {
    use super::act;

    // ---------------------------------------------------------------
    // Dispatching entry points
    // ---------------------------------------------------------------

    macro_rules! dispatch_map {
        ($src:expr, $dst:expr, $avx2:ident, $scalar:ident) => {{
            assert_eq!($src.len(), $dst.len(), "activation map length mismatch");
            #[cfg(target_arch = "x86_64")]
            if super::have_avx2() {
                // SAFETY: the AVX2 requirement was just checked at runtime.
                unsafe { avx2::$avx2($src, $dst) };
                return;
            }
            $scalar($src, $dst);
        }};
    }

    /// `dst[i] = fast_exp(src[i])`.
    pub fn exp_map(src: &[f32], dst: &mut [f32]) {
        dispatch_map!(src, dst, exp_map_avx2, exp_map_scalar);
    }

    /// `dst[i] = sigmoid(src[i])` (fast-exp form).
    pub fn sigmoid_map(src: &[f32], dst: &mut [f32]) {
        dispatch_map!(src, dst, sigmoid_map_avx2, sigmoid_map_scalar);
    }

    /// `dst[i] = tanh(src[i])` (fast-exp form).
    pub fn tanh_map(src: &[f32], dst: &mut [f32]) {
        dispatch_map!(src, dst, tanh_map_avx2, tanh_map_scalar);
    }

    /// `dst[i] = selu(src[i])` (fast-exp form).
    pub fn selu_map(src: &[f32], dst: &mut [f32]) {
        dispatch_map!(src, dst, selu_map_avx2, selu_map_scalar);
    }

    /// Fused bias-add + sigmoid over a row-major block: for every row of
    /// width `bias.len()`, `v = sigmoid(v + b)`. Bitwise identical to a
    /// broadcast add followed by a sigmoid map (same per-element chain).
    /// The three fused GRU gate activations run through this.
    pub fn sigmoid_bias_map_inplace(block: &mut [f32], bias: &[f32]) {
        assert!(!bias.is_empty(), "bias must be non-empty");
        assert_eq!(block.len() % bias.len(), 0, "block width mismatch");
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::sigmoid_bias_map_inplace_avx2(block, bias) };
            return;
        }
        sigmoid_bias_map_inplace_scalar(block, bias);
    }

    /// Fused bias-add + tanh over a row-major block (candidate gate).
    pub fn tanh_bias_map_inplace(block: &mut [f32], bias: &[f32]) {
        assert!(!bias.is_empty(), "bias must be non-empty");
        assert_eq!(block.len() % bias.len(), 0, "block width mismatch");
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::tanh_bias_map_inplace_avx2(block, bias) };
            return;
        }
        tanh_bias_map_inplace_scalar(block, bias);
    }

    /// `dst[i] = g[i] * sigmoid_deriv_from_output(y[i])` — the sigmoid
    /// adjoint as one pass.
    pub fn sigmoid_deriv_mul(g: &[f32], y: &[f32], dst: &mut [f32]) {
        assert!(
            g.len() == y.len() && y.len() == dst.len(),
            "adjoint length mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::sigmoid_deriv_mul_avx2(g, y, dst) };
            return;
        }
        sigmoid_deriv_mul_scalar(g, y, dst);
    }

    /// `dst[i] = g[i] * tanh_deriv_from_output(y[i])`.
    pub fn tanh_deriv_mul(g: &[f32], y: &[f32], dst: &mut [f32]) {
        assert!(
            g.len() == y.len() && y.len() == dst.len(),
            "adjoint length mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::tanh_deriv_mul_avx2(g, y, dst) };
            return;
        }
        tanh_deriv_mul_scalar(g, y, dst);
    }

    /// `dst[i] = g[i] * selu_deriv(x[i])` — SELU's adjoint is a function of
    /// the *input*, not the output.
    pub fn selu_deriv_mul(g: &[f32], x: &[f32], dst: &mut [f32]) {
        assert!(
            g.len() == x.len() && x.len() == dst.len(),
            "adjoint length mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::selu_deriv_mul_avx2(g, x, dst) };
            return;
        }
        selu_deriv_mul_scalar(g, x, dst);
    }

    /// `g[i] *= sigmoid_deriv_from_output(y[i])` in place — the fused GRU
    /// backward gate tails.
    pub fn sigmoid_deriv_mul_inplace(g: &mut [f32], y: &[f32]) {
        assert_eq!(g.len(), y.len(), "adjoint length mismatch");
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::sigmoid_deriv_mul_inplace_avx2(g, y) };
            return;
        }
        sigmoid_deriv_mul_inplace_scalar(g, y);
    }

    /// `g[i] *= tanh_deriv_from_output(y[i])` in place.
    pub fn tanh_deriv_mul_inplace(g: &mut [f32], y: &[f32]) {
        assert_eq!(g.len(), y.len(), "adjoint length mismatch");
        #[cfg(target_arch = "x86_64")]
        if super::have_avx2() {
            // SAFETY: the AVX2 requirement was just checked at runtime.
            unsafe { avx2::tanh_deriv_mul_inplace_avx2(g, y) };
            return;
        }
        tanh_deriv_mul_inplace_scalar(g, y);
    }

    // ---------------------------------------------------------------
    // Scalar reference forms (the bitwise ground truth)
    // ---------------------------------------------------------------

    /// Scalar reference for [`exp_map`].
    pub fn exp_map_scalar(src: &[f32], dst: &mut [f32]) {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = act::fast_exp(v);
        }
    }

    /// Scalar reference for [`sigmoid_map`].
    pub fn sigmoid_map_scalar(src: &[f32], dst: &mut [f32]) {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = act::sigmoid(v);
        }
    }

    /// Scalar reference for [`tanh_map`].
    pub fn tanh_map_scalar(src: &[f32], dst: &mut [f32]) {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = act::tanh(v);
        }
    }

    /// Scalar reference for [`selu_map`].
    pub fn selu_map_scalar(src: &[f32], dst: &mut [f32]) {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = act::selu(v);
        }
    }

    /// Scalar reference for [`sigmoid_bias_map_inplace`].
    pub fn sigmoid_bias_map_inplace_scalar(block: &mut [f32], bias: &[f32]) {
        for row in block.chunks_exact_mut(bias.len()) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v = act::sigmoid(*v + b);
            }
        }
    }

    /// Scalar reference for [`tanh_bias_map_inplace`].
    pub fn tanh_bias_map_inplace_scalar(block: &mut [f32], bias: &[f32]) {
        for row in block.chunks_exact_mut(bias.len()) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v = act::tanh(*v + b);
            }
        }
    }

    /// Scalar reference for [`sigmoid_deriv_mul`].
    pub fn sigmoid_deriv_mul_scalar(g: &[f32], y: &[f32], dst: &mut [f32]) {
        for ((d, &gi), &yi) in dst.iter_mut().zip(g).zip(y) {
            *d = gi * act::sigmoid_deriv_from_output(yi);
        }
    }

    /// Scalar reference for [`tanh_deriv_mul`].
    pub fn tanh_deriv_mul_scalar(g: &[f32], y: &[f32], dst: &mut [f32]) {
        for ((d, &gi), &yi) in dst.iter_mut().zip(g).zip(y) {
            *d = gi * act::tanh_deriv_from_output(yi);
        }
    }

    /// Scalar reference for [`selu_deriv_mul`].
    pub fn selu_deriv_mul_scalar(g: &[f32], x: &[f32], dst: &mut [f32]) {
        for ((d, &gi), &xi) in dst.iter_mut().zip(g).zip(x) {
            *d = gi * act::selu_deriv(xi);
        }
    }

    /// Scalar reference for [`sigmoid_deriv_mul_inplace`].
    pub fn sigmoid_deriv_mul_inplace_scalar(g: &mut [f32], y: &[f32]) {
        for (gi, &yi) in g.iter_mut().zip(y) {
            *gi *= act::sigmoid_deriv_from_output(yi);
        }
    }

    /// Scalar reference for [`tanh_deriv_mul_inplace`].
    pub fn tanh_deriv_mul_inplace_scalar(g: &mut [f32], y: &[f32]) {
        for (gi, &yi) in g.iter_mut().zip(y) {
            *gi *= act::tanh_deriv_from_output(yi);
        }
    }

    // ---------------------------------------------------------------
    // AVX2 builds
    // ---------------------------------------------------------------

    /// 8-lane AVX2 builds of the kernels above.
    ///
    /// # Safety
    /// Every function requires AVX2 at runtime (checked by the dispatchers
    /// through [`super::have_avx2`]).
    #[cfg(target_arch = "x86_64")]
    pub mod avx2 {
        use super::act;
        use crate::activations::{
            EXP_CLAMP, LN2_HI, LN2_LO, ROUND_MAGIC, SELU_ALPHA, SELU_LAMBDA, TANH_CLAMP,
        };
        use std::arch::x86_64::*;

        /// 8-lane `fast_exp`, operation-for-operation the scalar body.
        /// `#[inline(always)]` (no `target_feature`) so it compiles inside
        /// each caller's AVX2-enabled context.
        #[inline(always)]
        unsafe fn fast_exp8(x: __m256) -> __m256 {
            let one = _mm256_set1_ps(1.0);
            // Scalar clamp is min-then-max for finite inputs.
            let x = _mm256_max_ps(
                _mm256_min_ps(x, _mm256_set1_ps(EXP_CLAMP)),
                _mm256_set1_ps(-EXP_CLAMP),
            );
            let n = _mm256_sub_ps(
                _mm256_add_ps(
                    _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
                    _mm256_set1_ps(ROUND_MAGIC),
                ),
                _mm256_set1_ps(ROUND_MAGIC),
            );
            let g = _mm256_sub_ps(
                _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(LN2_HI))),
                _mm256_mul_ps(n, _mm256_set1_ps(LN2_LO)),
            );
            // Same nested Horner chain as the scalar polynomial.
            let p = _mm256_add_ps(
                _mm256_set1_ps(1.0 / 120.0),
                _mm256_mul_ps(g, _mm256_set1_ps(1.0 / 720.0)),
            );
            let p = _mm256_add_ps(_mm256_set1_ps(1.0 / 24.0), _mm256_mul_ps(g, p));
            let p = _mm256_add_ps(_mm256_set1_ps(1.0 / 6.0), _mm256_mul_ps(g, p));
            let p = _mm256_add_ps(_mm256_set1_ps(0.5), _mm256_mul_ps(g, p));
            let p = _mm256_add_ps(one, _mm256_mul_ps(g, p));
            let p = _mm256_add_ps(one, _mm256_mul_ps(g, p));
            // `n as i32` truncates; n is integral from the magic-number
            // rounding, so cvttps is exact. |n| <= 126, so the exponent-bit
            // arithmetic never wraps.
            let ni = _mm256_cvttps_epi32(n);
            let bits = _mm256_slli_epi32::<23>(_mm256_add_epi32(ni, _mm256_set1_epi32(127)));
            _mm256_mul_ps(_mm256_castsi256_ps(bits), p)
        }

        /// 8-lane sigmoid: `1 / (1 + fast_exp(-x))`; `-x` is the sign-bit
        /// XOR the scalar negation lowers to.
        #[inline(always)]
        unsafe fn sigmoid8(x: __m256) -> __m256 {
            let one = _mm256_set1_ps(1.0);
            let e = fast_exp8(_mm256_xor_ps(x, _mm256_set1_ps(-0.0)));
            _mm256_div_ps(one, _mm256_add_ps(one, e))
        }

        /// 8-lane tanh: clamp ±9, `(e^{2x} − 1) / (e^{2x} + 1)`.
        #[inline(always)]
        unsafe fn tanh8(x: __m256) -> __m256 {
            let one = _mm256_set1_ps(1.0);
            let x = _mm256_max_ps(
                _mm256_min_ps(x, _mm256_set1_ps(TANH_CLAMP)),
                _mm256_set1_ps(-TANH_CLAMP),
            );
            let e2 = fast_exp8(_mm256_mul_ps(_mm256_set1_ps(2.0), x));
            _mm256_div_ps(_mm256_sub_ps(e2, one), _mm256_add_ps(e2, one))
        }

        /// 8-lane SELU: compute both branches, blend on `x > 0`. The scalar
        /// `SELU_LAMBDA * SELU_ALPHA * (e − 1)` associates left, so the
        /// λ·α product is one constant here — identical rounding.
        #[inline(always)]
        unsafe fn selu8(x: __m256) -> __m256 {
            const LA: f32 = SELU_LAMBDA * SELU_ALPHA;
            let pos = _mm256_mul_ps(_mm256_set1_ps(SELU_LAMBDA), x);
            let neg = _mm256_mul_ps(
                _mm256_set1_ps(LA),
                _mm256_sub_ps(fast_exp8(x), _mm256_set1_ps(1.0)),
            );
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_setzero_ps());
            _mm256_blendv_ps(neg, pos, gt)
        }

        /// 8-lane SELU derivative (function of the input).
        #[inline(always)]
        unsafe fn selu_deriv8(x: __m256) -> __m256 {
            const LA: f32 = SELU_LAMBDA * SELU_ALPHA;
            let pos = _mm256_set1_ps(SELU_LAMBDA);
            let neg = _mm256_mul_ps(_mm256_set1_ps(LA), fast_exp8(x));
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_setzero_ps());
            _mm256_blendv_ps(neg, pos, gt)
        }

        macro_rules! avx2_map {
            ($(#[$doc:meta])* $name:ident, $lanes:ident, $scalar_fn:path) => {
                $(#[$doc])*
                /// # Safety
                /// Requires AVX2.
                #[target_feature(enable = "avx2")]
                pub unsafe fn $name(src: &[f32], dst: &mut [f32]) {
                    debug_assert_eq!(src.len(), dst.len());
                    let n = src.len();
                    let mut i = 0;
                    while i + 8 <= n {
                        let v = _mm256_loadu_ps(src.as_ptr().add(i));
                        _mm256_storeu_ps(dst.as_mut_ptr().add(i), $lanes(v));
                        i += 8;
                    }
                    while i < n {
                        dst[i] = $scalar_fn(src[i]);
                        i += 1;
                    }
                }
            };
        }

        avx2_map!(
            /// AVX2 build of [`super::exp_map`].
            exp_map_avx2,
            fast_exp8,
            act::fast_exp
        );
        avx2_map!(
            /// AVX2 build of [`super::sigmoid_map`].
            sigmoid_map_avx2,
            sigmoid8,
            act::sigmoid
        );
        avx2_map!(
            /// AVX2 build of [`super::tanh_map`].
            tanh_map_avx2,
            tanh8,
            act::tanh
        );
        avx2_map!(
            /// AVX2 build of [`super::selu_map`].
            selu_map_avx2,
            selu8,
            act::selu
        );

        macro_rules! avx2_bias_map {
            ($(#[$doc:meta])* $name:ident, $lanes:ident, $scalar_fn:path) => {
                $(#[$doc])*
                /// # Safety
                /// Requires AVX2; `block.len()` must be a multiple of
                /// `bias.len()`.
                #[target_feature(enable = "avx2")]
                pub unsafe fn $name(block: &mut [f32], bias: &[f32]) {
                    let w = bias.len();
                    for row in block.chunks_exact_mut(w) {
                        let mut j = 0;
                        while j + 8 <= w {
                            let v = _mm256_loadu_ps(row.as_ptr().add(j));
                            let b = _mm256_loadu_ps(bias.as_ptr().add(j));
                            _mm256_storeu_ps(row.as_mut_ptr().add(j), $lanes(_mm256_add_ps(v, b)));
                            j += 8;
                        }
                        while j < w {
                            row[j] = $scalar_fn(row[j] + bias[j]);
                            j += 1;
                        }
                    }
                }
            };
        }

        avx2_bias_map!(
            /// AVX2 build of [`super::sigmoid_bias_map_inplace`].
            sigmoid_bias_map_inplace_avx2,
            sigmoid8,
            act::sigmoid
        );
        avx2_bias_map!(
            /// AVX2 build of [`super::tanh_bias_map_inplace`].
            tanh_bias_map_inplace_avx2,
            tanh8,
            act::tanh
        );

        /// AVX2 build of [`super::sigmoid_deriv_mul`].
        /// # Safety
        /// Requires AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn sigmoid_deriv_mul_avx2(g: &[f32], y: &[f32], dst: &mut [f32]) {
            let one = _mm256_set1_ps(1.0);
            let n = g.len();
            let mut i = 0;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                let d = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(gv, d));
                i += 8;
            }
            while i < n {
                dst[i] = g[i] * act::sigmoid_deriv_from_output(y[i]);
                i += 1;
            }
        }

        /// AVX2 build of [`super::tanh_deriv_mul`].
        /// # Safety
        /// Requires AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn tanh_deriv_mul_avx2(g: &[f32], y: &[f32], dst: &mut [f32]) {
            let one = _mm256_set1_ps(1.0);
            let n = g.len();
            let mut i = 0;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                let d = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(gv, d));
                i += 8;
            }
            while i < n {
                dst[i] = g[i] * act::tanh_deriv_from_output(y[i]);
                i += 1;
            }
        }

        /// AVX2 build of [`super::selu_deriv_mul`].
        /// # Safety
        /// Requires AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn selu_deriv_mul_avx2(g: &[f32], x: &[f32], dst: &mut [f32]) {
            let n = g.len();
            let mut i = 0;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let xv = _mm256_loadu_ps(x.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(gv, selu_deriv8(xv)));
                i += 8;
            }
            while i < n {
                dst[i] = g[i] * act::selu_deriv(x[i]);
                i += 1;
            }
        }

        /// AVX2 build of [`super::sigmoid_deriv_mul_inplace`].
        /// # Safety
        /// Requires AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn sigmoid_deriv_mul_inplace_avx2(g: &mut [f32], y: &[f32]) {
            let one = _mm256_set1_ps(1.0);
            let n = g.len();
            let mut i = 0;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                let d = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
                _mm256_storeu_ps(g.as_mut_ptr().add(i), _mm256_mul_ps(gv, d));
                i += 8;
            }
            while i < n {
                g[i] *= act::sigmoid_deriv_from_output(y[i]);
                i += 1;
            }
        }

        /// AVX2 build of [`super::tanh_deriv_mul_inplace`].
        /// # Safety
        /// Requires AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn tanh_deriv_mul_inplace_avx2(g: &mut [f32], y: &[f32]) {
            let one = _mm256_set1_ps(1.0);
            let n = g.len();
            let mut i = 0;
            while i + 8 <= n {
                let gv = _mm256_loadu_ps(g.as_ptr().add(i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                let d = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
                _mm256_storeu_ps(g.as_mut_ptr().add(i), _mm256_mul_ps(gv, d));
                i += 8;
            }
            while i < n {
                g[i] *= act::tanh_deriv_from_output(y[i]);
                i += 1;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn ramp(n: usize) -> Vec<f32> {
            (0..n)
                .map(|i| (i as f32) * 0.37 - (n as f32) * 0.17)
                .collect()
        }

        #[test]
        fn dispatched_maps_match_scalar_bitwise() {
            // Covers both branches of the dispatch: on AVX2 hosts this pins
            // vector-vs-scalar bit identity, elsewhere it is a self-check.
            for n in [0usize, 1, 7, 8, 9, 64, 257] {
                let src = ramp(n);
                let mut a = vec![0.0f32; n];
                let mut b = vec![0.0f32; n];
                exp_map(&src, &mut a);
                exp_map_scalar(&src, &mut b);
                assert_eq!(bits(&a), bits(&b), "exp n={n}");
                sigmoid_map(&src, &mut a);
                sigmoid_map_scalar(&src, &mut b);
                assert_eq!(bits(&a), bits(&b), "sigmoid n={n}");
                tanh_map(&src, &mut a);
                tanh_map_scalar(&src, &mut b);
                assert_eq!(bits(&a), bits(&b), "tanh n={n}");
                selu_map(&src, &mut a);
                selu_map_scalar(&src, &mut b);
                assert_eq!(bits(&a), bits(&b), "selu n={n}");
            }
        }

        #[test]
        fn fused_bias_maps_match_two_pass_scalar_bitwise() {
            for w in [1usize, 3, 8, 11, 16] {
                let rows = 9;
                let bias: Vec<f32> = (0..w).map(|j| (j as f32) * 0.11 - 0.4).collect();
                let block = ramp(rows * w);
                let mut fused = block.clone();
                sigmoid_bias_map_inplace(&mut fused, &bias);
                let mut two_pass = block.clone();
                for row in two_pass.chunks_exact_mut(w) {
                    for (v, &b) in row.iter_mut().zip(&bias) {
                        *v += b;
                    }
                }
                let mut expect = vec![0.0f32; rows * w];
                sigmoid_map_scalar(&two_pass, &mut expect);
                assert_eq!(bits(&fused), bits(&expect), "sigmoid bias w={w}");

                let mut fused_t = block.clone();
                tanh_bias_map_inplace(&mut fused_t, &bias);
                let mut expect_t = vec![0.0f32; rows * w];
                tanh_map_scalar(&two_pass, &mut expect_t);
                assert_eq!(bits(&fused_t), bits(&expect_t), "tanh bias w={w}");
            }
        }

        #[test]
        fn deriv_fusions_match_scalar_bitwise() {
            let n = 133;
            let g = ramp(n);
            let x = ramp(n).iter().map(|v| v * 0.13).collect::<Vec<_>>();
            let mut y = vec![0.0f32; n];
            sigmoid_map_scalar(&x, &mut y);

            let mut a = vec![0.0f32; n];
            let mut b = vec![0.0f32; n];
            sigmoid_deriv_mul(&g, &y, &mut a);
            sigmoid_deriv_mul_scalar(&g, &y, &mut b);
            assert_eq!(bits(&a), bits(&b));

            tanh_deriv_mul(&g, &y, &mut a);
            tanh_deriv_mul_scalar(&g, &y, &mut b);
            assert_eq!(bits(&a), bits(&b));

            selu_deriv_mul(&g, &x, &mut a);
            selu_deriv_mul_scalar(&g, &x, &mut b);
            assert_eq!(bits(&a), bits(&b));

            let mut ip_a = g.clone();
            let mut ip_b = g.clone();
            sigmoid_deriv_mul_inplace(&mut ip_a, &y);
            sigmoid_deriv_mul_inplace_scalar(&mut ip_b, &y);
            assert_eq!(bits(&ip_a), bits(&ip_b));

            tanh_deriv_mul_inplace(&mut ip_a, &y);
            tanh_deriv_mul_inplace_scalar(&mut ip_b, &y);
            assert_eq!(bits(&ip_a), bits(&ip_b));
        }

        fn bits(v: &[f32]) -> Vec<u32> {
            v.iter().map(|x| x.to_bits()).collect()
        }
    }
}
