//! Criterion bench: one training step (forward + backward + gradient
//! extraction) at paper-scale configuration, before and after the fused
//! hot path.
//!
//! Three variants process the same batch of NSFNET samples:
//!
//! - `before/legacy_per_sample` — the pre-refactor path: a fresh tape per
//!   sample, unfused op-by-op forward (`forward_unfused`).
//! - `after/fused_tape_reuse` — fused row-compacted ops (`gather_rows`/
//!   `gru_step_rows`/`segment_acc_rows`) with one pooled tape reused across
//!   the batch.
//! - `after/megabatch` — the production default: the whole batch packed into
//!   one block-diagonal megabatch, one bind, one fused forward/backward.
//!
//! The criterion stand-in writes `BENCH_training_step.json` with ns/op and
//! throughput per variant, so the before/after ratio is tracked across PRs.
//! Acceptance floor for this PR: `after/megabatch` >= 3x
//! `before/legacy_per_sample`.

use criterion::{criterion_group, criterion_main, Criterion, Measurement};
use rn_autograd::Graph;
use rn_dataset::{generate_sample, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use routenet::entities::{build_megabatch, SamplePlan};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};

const BATCH: usize = 8;

fn paper_scale_setup() -> (ExtendedRouteNet, Vec<SamplePlan>) {
    let gen = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let topo = topologies::nsfnet_default();
    let samples: Vec<_> = (0..BATCH as u64)
        .map(|i| generate_sample(&topo, &gen, 5, i))
        .collect();
    let ds = Dataset {
        topology: topo,
        samples,
    };
    // Paper-scale model: state_dim=32, T=8 message-passing iterations.
    let model_cfg = ModelConfig {
        state_dim: 32,
        mp_iterations: 8,
        readout_hidden: 64,
        ..ModelConfig::default()
    };
    let mut model = ExtendedRouteNet::new(model_cfg);
    model.fit_preprocessing(&ds, 5);
    let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
    (model, plans)
}

/// Pre-refactor training step, reproduced faithfully: a fresh tape per
/// sample, unfused op-by-op forward, and the tape's reference mode (the
/// seed's naive matmul kernels and libm transcendentals).
fn legacy_step(model: &ExtendedRouteNet, plans: &[SamplePlan]) -> usize {
    let mut total = 0;
    for plan in plans {
        let mut g = Graph::new();
        g.set_reference_mode(true);
        let bound = model.bind(&mut g);
        let pred = model.forward_unfused(&mut g, &bound, plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        total += model.grads(&g, &bound).len();
    }
    total
}

/// Fused ops + one pooled tape reused across the whole batch.
fn fused_pooled_step(model: &ExtendedRouteNet, plans: &[SamplePlan], g: &mut Graph) -> usize {
    let mut total = 0;
    for plan in plans {
        g.reset();
        let bound = model.bind(g);
        let pred = model.forward(g, &bound, plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        total += model.grads(g, &bound).len();
    }
    total
}

/// The production default: one fused block-diagonal pass for the batch.
fn megabatch_step(model: &ExtendedRouteNet, plans: &[SamplePlan], g: &mut Graph) -> usize {
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mb = build_megabatch(&parts);
    g.reset();
    let bound = model.bind(g);
    let pred = model.forward(g, &bound, &mb.plan);
    let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    g.backward(loss);
    model.grads(g, &bound).len()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Interleaved measurement: one legacy + one fused + one megabatch step per
/// round, medians across rounds. Sequential per-variant timing would let
/// slow machine-load drift (thermal throttling, noisy neighbors) bias the
/// before/after ratio; round-robin keeps every variant exposed to the same
/// conditions.
fn bench_training_step(_c: &mut Criterion) {
    let (model, plans) = paper_scale_setup();
    const ROUNDS: usize = 9;

    let mut pooled_tape = Graph::new();
    let mut mega_tape = Graph::new();

    // Warmup: touch every path once (fills tape pools, faults in pages).
    std::hint::black_box(legacy_step(&model, &plans));
    std::hint::black_box(fused_pooled_step(&model, &plans, &mut pooled_tape));
    std::hint::black_box(megabatch_step(&model, &plans, &mut mega_tape));

    let mut t_legacy = Vec::with_capacity(ROUNDS);
    let mut t_fused = Vec::with_capacity(ROUNDS);
    let mut t_mega = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = std::time::Instant::now();
        std::hint::black_box(legacy_step(&model, &plans));
        t_legacy.push(t.elapsed().as_nanos() as f64);

        let t = std::time::Instant::now();
        std::hint::black_box(fused_pooled_step(&model, &plans, &mut pooled_tape));
        t_fused.push(t.elapsed().as_nanos() as f64);

        let t = std::time::Instant::now();
        std::hint::black_box(megabatch_step(&model, &plans, &mut mega_tape));
        t_mega.push(t.elapsed().as_nanos() as f64);
    }

    let (legacy, fused, mega) = (median(t_legacy), median(t_fused), median(t_mega));
    let results: Vec<Measurement> = [
        ("before/legacy_per_sample", legacy),
        ("after/fused_tape_reuse", fused),
        ("after/megabatch", mega),
    ]
    .iter()
    .map(|&(id, ns)| Measurement {
        id: id.to_string(),
        ns_per_op: ns,
        ops_per_sec: 1.0e9 / ns,
    })
    .collect();
    for m in &results {
        eprintln!(
            "bench training_step/{:<28} {:>14.0} ns/op {:>10.2} ops/s",
            m.id, m.ns_per_op, m.ops_per_sec
        );
    }
    let speedup_mega = legacy / mega;
    let speedup_fused = legacy / fused;
    eprintln!("speedup legacy->megabatch: {speedup_mega:.2}x, legacy->fused_tape_reuse: {speedup_fused:.2}x");
    criterion::write_report_with_derived(
        "training_step",
        &results,
        &[
            ("speedup_megabatch_vs_legacy", speedup_mega),
            ("speedup_fused_tape_reuse_vs_legacy", speedup_fused),
        ],
    );
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
