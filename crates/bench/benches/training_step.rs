//! Criterion bench: one training step (forward + backward + gradient
//! extraction) on a single sample graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_autograd::Graph;
use rn_dataset::{generate_sample, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, OriginalRouteNet};

fn bench_training_step(c: &mut Criterion) {
    let gen = GeneratorConfig {
        sim: SimConfig { duration_s: 60.0, warmup_s: 10.0, ..SimConfig::default() },
        ..GeneratorConfig::default()
    };
    let topo = topologies::nsfnet_default();
    let sample = generate_sample(&topo, &gen, 5, 0);
    let ds = Dataset { topology: topo, samples: vec![sample] };
    let model_cfg = ModelConfig { state_dim: 16, mp_iterations: 4, readout_hidden: 32, ..ModelConfig::default() };

    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);

    let mut ext = ExtendedRouteNet::new(model_cfg.clone());
    ext.fit_preprocessing(&ds, 5);
    let plan = ext.plan(&ds.samples[0]);
    group.bench_with_input(BenchmarkId::new("fwd_bwd", "extended/nsfnet"), &plan, |b, plan| {
        b.iter(|| {
            let mut g = Graph::new();
            let bound = ext.bind(&mut g);
            let pred = ext.forward(&mut g, &bound, plan);
            let reliable = g.gather_rows(pred, &plan.reliable_idx);
            let target = g.constant(plan.reliable_targets_norm());
            let loss = g.mse(reliable, target);
            g.backward(loss);
            ext.grads(&g, &bound).len()
        })
    });

    let mut orig = OriginalRouteNet::new(model_cfg);
    orig.fit_preprocessing(&ds, 5);
    let plan_o = orig.plan(&ds.samples[0]);
    group.bench_with_input(BenchmarkId::new("fwd_bwd", "original/nsfnet"), &plan_o, |b, plan| {
        b.iter(|| {
            let mut g = Graph::new();
            let bound = orig.bind(&mut g);
            let pred = orig.forward(&mut g, &bound, plan);
            let reliable = g.gather_rows(pred, &plan.reliable_idx);
            let target = g.constant(plan.reliable_targets_norm());
            let loss = g.mse(reliable, target);
            g.backward(loss);
            orig.grads(&g, &bound).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
