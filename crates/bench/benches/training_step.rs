//! Criterion bench: one training step (forward + backward + gradient
//! extraction) at paper-scale configuration, before and after the fused
//! hot path.
//!
//! Three variants process the same batch of NSFNET samples:
//!
//! - `before/legacy_per_sample` — the pre-refactor path: a fresh tape per
//!   sample, unfused op-by-op forward (`forward_unfused`).
//! - `after/fused_tape_reuse` — fused row-compacted ops (`gather_rows`/
//!   `gru_step_rows`/`segment_acc_rows`) with one pooled tape reused across
//!   the batch.
//! - `after/megabatch` — the production default: the whole batch packed into
//!   one block-diagonal megabatch, one bind, one fused forward/backward.
//!
//! A fourth family, `parallel_backward/shards_N`, runs the same megabatch
//! step with the intra-batch shard gang at N workers (the block-diagonal
//! plan's per-sample shards fan out across threads; gradients are reduced in
//! canonical per-shard order, so every N produces identical bits — pinned by
//! `tests/sharded_determinism.rs`). Two backward-only families separate the
//! two sharding generations: `backward/shards_N` runs with the dense row
//! partitions stripped (per-sample message-passing shards only — the dense
//! link/node GRU updates and the readout MLP stay sequential, the PR-3
//! layout), while `backward_dense/shards_N` runs the fully-parallel backward
//! (dense work row-blocked across the same gang). Their gap at high N is the
//! sequential dense tail the dense sharding removes — reported as
//! `dense_sequential_fraction` (≈0 on a 1-core host; multi-core CI is where
//! it is meaningful). `after/megabatch_unsharded` strips the shard layout
//! entirely to measure the canonical reduction's single-thread overhead.
//!
//! The composition-layer family measures the batch scheduler's steady state:
//!
//! - `compose/fresh_build` — one `build_megabatch` (what the pre-scheduler
//!   trainer paid EVERY step, and what a serving worker pays on a
//!   composition-cache miss);
//! - `compose/cached_refill` — rewriting the features of a cached
//!   composition (the cache-hit path);
//! - `after/megabatch_fresh_compose` — compose + step: the epoch-1 /
//!   pre-composition-layer per-step cost;
//! - `after/megabatch_precomposed` — the same step on the same tape with a
//!   pre-composed megabatch: the epoch≥2 steady state, per-step structure
//!   work eliminated. The two are measured back to back on one tape so the
//!   derived `epoch2_step_speedup_vs_fresh_compose` isolates exactly the
//!   planning cost (at paper scale the kernels dominate, so expect a small
//!   but honest ratio; `epoch2_structure_ns_eliminated_per_step` records
//!   the absolute planning time the scheduler removes from every step).
//!
//! Two PR-9 families close the loop on the last per-step memory traffic:
//!
//! - `activation_map/{scalar,avx2}` — one bulk tanh map over a ~1M-element
//!   buffer through the scalar reference loop vs the runtime-dispatched
//!   slice kernel (AVX2 on hosts that have it, bitwise identical either
//!   way). The derived `activation_speedup` is recorded only when the host
//!   actually dispatches AVX2; otherwise an
//!   `activation_speedup_suppressed_no_avx2` marker is written so "not
//!   measured" cannot be misread as "no speedup".
//! - `step_zero_copy/{on,off}` — the full precomposed megabatch step with
//!   the tape's zero-copy index mode pinned on vs off (alternating order
//!   per round, separate tapes). `zero_copy_step_ratio` = off/on; the mode
//!   is bitwise-identical by construction, so this ratio is pure memory
//!   traffic.
//!
//! The criterion stand-in writes `BENCH_training_step.json` with ns/op and
//! throughput per variant plus derived speedups (including the per-shard
//! backward scaling and the epoch≥2 step-time improvement), so ratios are
//! tracked across PRs. Note: shard speedups only materialize on multi-core
//! runners; a 1-core container records ~1x.

use criterion::{criterion_group, criterion_main, Criterion, Measurement};
use rn_autograd::{Graph, WorkerPool};
use rn_dataset::{generate_sample, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use rn_tensor::simd::activations as vact;
use routenet::compose::ComposedMegabatch;
use routenet::entities::{build_megabatch, MegabatchPlan, SamplePlan};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, TrainConfig};
use std::sync::Arc;

const BATCH: usize = 8;

/// The golden 1/2/4/8 ladder plus whatever CI injects through the one
/// centralized `RN_BACKWARD_SHARDS` helper (same source as the trainer and
/// the determinism suite, so the knob cannot drift).
fn shard_workers() -> Vec<usize> {
    let mut workers = vec![1, 2, 4, 8];
    if let Some(extra) = TrainConfig::env_backward_shards() {
        if !workers.contains(&extra) {
            workers.push(extra);
        }
    }
    workers
}

/// Paper-scale (state_dim=32, T=8) and small-scale (state_dim=8, T=2)
/// models + plans over the same NSFNET scenario batch. The small pair
/// exists for the composition rows: at paper scale the kernels dwarf
/// planning, so the steady-state win of eliminating `build_megabatch` is
/// also measured in a regime where planning is a visible step fraction.
#[allow(clippy::type_complexity)]
fn paper_scale_setup() -> (
    ExtendedRouteNet,
    Vec<SamplePlan>,
    ExtendedRouteNet,
    Vec<SamplePlan>,
) {
    let gen = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let topo = topologies::nsfnet_default();
    let samples: Vec<_> = (0..BATCH as u64)
        .map(|i| generate_sample(&topo, &gen, 5, i))
        .collect();
    let ds = Dataset {
        topology: topo,
        samples,
    };
    // Paper-scale model: state_dim=32, T=8 message-passing iterations.
    let model_cfg = ModelConfig {
        state_dim: 32,
        mp_iterations: 8,
        readout_hidden: 64,
        ..ModelConfig::default()
    };
    let mut model = ExtendedRouteNet::new(model_cfg);
    model.fit_preprocessing(&ds, 5);
    let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
    let mut small_model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 16,
        ..ModelConfig::default()
    });
    small_model.fit_preprocessing(&ds, 5);
    let small_plans: Vec<SamplePlan> = ds.samples.iter().map(|s| small_model.plan(s)).collect();
    (model, plans, small_model, small_plans)
}

/// Pre-refactor training step, reproduced faithfully: a fresh tape per
/// sample, unfused op-by-op forward, and the tape's reference mode (the
/// seed's naive matmul kernels and libm transcendentals).
fn legacy_step(model: &ExtendedRouteNet, plans: &[SamplePlan]) -> usize {
    let mut total = 0;
    for plan in plans {
        let mut g = Graph::new();
        g.set_reference_mode(true);
        let bound = model.bind(&mut g);
        let pred = model.forward_unfused(&mut g, &bound, plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        total += model.grads(&g, &bound).len();
    }
    total
}

/// Fused ops + one pooled tape reused across the whole batch.
fn fused_pooled_step(model: &ExtendedRouteNet, plans: &[SamplePlan], g: &mut Graph) -> usize {
    let mut total = 0;
    for plan in plans {
        g.reset();
        let bound = model.bind(g);
        let pred = model.forward(g, &bound, plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        total += model.grads(g, &bound).len();
    }
    total
}

/// The production default: one fused block-diagonal pass for the batch.
/// Returns the backward-only nanoseconds (the sharded lever's target).
fn megabatch_step(model: &ExtendedRouteNet, mb: &MegabatchPlan, g: &mut Graph) -> f64 {
    g.reset();
    let bound = model.bind(g);
    let pred = model.forward(g, &bound, &mb.plan);
    let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    let t = std::time::Instant::now();
    g.backward(loss);
    let backward_ns = t.elapsed().as_nanos() as f64;
    std::hint::black_box(model.grads(g, &bound).len());
    backward_ns
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Interleaved measurement: one legacy + one fused + one megabatch step per
/// round, medians across rounds. Sequential per-variant timing would let
/// slow machine-load drift (thermal throttling, noisy neighbors) bias the
/// before/after ratio; round-robin keeps every variant exposed to the same
/// conditions.
fn bench_training_step(_c: &mut Criterion) {
    let (model, plans, small_model, small_plans) = paper_scale_setup();
    const ROUNDS: usize = 13;
    let shard_workers = shard_workers();

    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let small_parts: Vec<&SamplePlan> = small_plans.iter().collect();
    // The production megabatch (shard layout precompiled) plus a stripped
    // copy that runs the pre-shard legacy kernels — the honest baseline for
    // the canonical reduction's single-thread overhead.
    let mb = build_megabatch(&parts);
    let mut mb_unsharded = build_megabatch(&parts);
    mb_unsharded.plan.shards = None;
    mb_unsharded.plan.extended_csr.num_shards = 0;
    mb_unsharded.plan.original_csr.num_shards = 0;
    // Per-sample shards only (dense row partitions stripped): the dense
    // link/node GRU updates and the readout MLP run sequentially, as they
    // did before the fully-parallel backward. The gap to `mb` at high
    // worker counts is the dense sequential tail.
    let mut mb_dense_seq = build_megabatch(&parts);
    if let Some(shards) = mb_dense_seq.plan.shards.as_mut() {
        shards.dense_path_bounds.clear();
        shards.dense_link_bounds.clear();
        shards.dense_node_bounds.clear();
    }
    // The cached composition whose features get refilled every round — the
    // composition-cache-hit / epoch≥2 structure-reuse path.
    let mut cached_composition = ComposedMegabatch::compose(&parts).expect("compose");
    let mb_small = build_megabatch(&small_parts);

    let mut pooled_tape = Graph::new();
    let mut unsharded_tape = Graph::new();
    let mut fresh_compose_tape = Graph::new();
    let mut small_tape = Graph::new();
    // One tape per shard-worker configuration so pooled buffers never mix.
    let mk_shard_tapes = || -> Vec<(usize, Graph)> {
        shard_workers
            .iter()
            .map(|&w| {
                let mut g = Graph::new();
                // shards_1 is the sequential canonical path: no pool at all.
                if w > 1 {
                    g.set_worker_pool(Some(Arc::new(WorkerPool::new(w))));
                }
                (w, g)
            })
            .collect()
    };
    let mut shard_tapes = mk_shard_tapes();
    let mut dense_seq_tapes = mk_shard_tapes();
    // Dedicated tapes for the canonical-overhead pair: the unsharded-legacy
    // and sharded-sequential backwards are measured back to back (order
    // alternating per round) so second-scale machine drift cancels out of
    // the single_shard_overhead_pct ratio — the same methodology the
    // fresh-compose/precomposed pair uses. The slower drift across a whole
    // round otherwise dominates a ≤5% criterion on a shared runner.
    let mut ov_unsharded_tape = Graph::new();
    let mut ov_dense_tape = Graph::new();
    // The zero-copy pair: the same precomposed megabatch stepped on two
    // tapes whose index mode is pinned on/off (alternating order per round
    // so drift cancels out of the ratio; separate tapes so pooled buffers
    // never mix).
    let mut zc_on_tape = Graph::new();
    zc_on_tape.set_zero_copy(true);
    let mut zc_off_tape = Graph::new();
    zc_off_tape.set_zero_copy(false);
    let zc_step = |tape: &mut Graph| {
        tape.reset();
        let bound = model.bind(tape);
        let pred = model.forward(tape, &bound, &mb.plan);
        let reliable = if tape.zero_copy() {
            tape.gather_rows_sharded(pred, mb.plan.reliable_idx_shared().into(), None)
        } else {
            tape.gather_rows(pred, &mb.plan.reliable_idx)
        };
        let target = tape.constant(mb.plan.reliable_targets_norm());
        let loss = tape.mse(reliable, target);
        tape.backward(loss);
        std::hint::black_box(model.grads(tape, &bound).len());
    };
    // Bulk activation map input: ~1M elements (well past L2) spanning the
    // interesting tanh range, so the row measures streaming kernel
    // throughput, not cache residency.
    let act_src: Vec<f32> = (0..1usize << 20)
        .map(|i| ((i % 977) as f32) * 0.01 - 4.8)
        .collect();
    let mut act_dst = vec![0.0f32; act_src.len()];

    // Warmup: touch every path once (fills tape pools, faults in pages).
    std::hint::black_box(legacy_step(&model, &plans));
    std::hint::black_box(fused_pooled_step(&model, &plans, &mut pooled_tape));
    std::hint::black_box(megabatch_step(&model, &mb_unsharded, &mut unsharded_tape));
    std::hint::black_box(megabatch_step(&model, &mb, &mut fresh_compose_tape));
    std::hint::black_box(megabatch_step(&small_model, &mb_small, &mut small_tape));
    for (_, tape) in shard_tapes.iter_mut() {
        std::hint::black_box(megabatch_step(&model, &mb, tape));
    }
    for (_, tape) in dense_seq_tapes.iter_mut() {
        std::hint::black_box(megabatch_step(&model, &mb_dense_seq, tape));
    }
    std::hint::black_box(megabatch_step(
        &model,
        &mb_unsharded,
        &mut ov_unsharded_tape,
    ));
    std::hint::black_box(megabatch_step(&model, &mb, &mut ov_dense_tape));
    zc_step(&mut zc_on_tape);
    zc_step(&mut zc_off_tape);
    vact::tanh_map(&act_src, &mut act_dst);
    vact::tanh_map_scalar(&act_src, &mut act_dst);
    std::hint::black_box(act_dst[0]);

    let mut t_legacy = Vec::with_capacity(ROUNDS);
    let mut t_fused = Vec::with_capacity(ROUNDS);
    let mut t_unsharded = Vec::with_capacity(ROUNDS);
    let mut t_unsharded_bwd = Vec::with_capacity(ROUNDS);
    let mut t_compose_fresh = Vec::with_capacity(ROUNDS);
    let mut t_compose_refill = Vec::with_capacity(ROUNDS);
    let mut t_fresh_compose_step = Vec::with_capacity(ROUNDS);
    let mut t_precomposed_step = Vec::with_capacity(ROUNDS);
    let mut t_small_fresh = Vec::with_capacity(ROUNDS);
    let mut t_small_pre = Vec::with_capacity(ROUNDS);
    let mut t_shard_step: Vec<Vec<f64>> = shard_workers.iter().map(|_| Vec::new()).collect();
    let mut t_shard_bwd: Vec<Vec<f64>> = shard_workers.iter().map(|_| Vec::new()).collect();
    let mut t_dense_seq_bwd: Vec<Vec<f64>> = shard_workers.iter().map(|_| Vec::new()).collect();
    let mut t_ov_unsharded = Vec::with_capacity(ROUNDS);
    let mut t_ov_dense = Vec::with_capacity(ROUNDS);
    let mut t_zc_on = Vec::with_capacity(ROUNDS);
    let mut t_zc_off = Vec::with_capacity(ROUNDS);
    let mut t_act_scalar = Vec::with_capacity(ROUNDS);
    let mut t_act_simd = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let t = std::time::Instant::now();
        std::hint::black_box(legacy_step(&model, &plans));
        t_legacy.push(t.elapsed().as_nanos() as f64);

        let t = std::time::Instant::now();
        std::hint::black_box(fused_pooled_step(&model, &plans, &mut pooled_tape));
        t_fused.push(t.elapsed().as_nanos() as f64);

        let t = std::time::Instant::now();
        let unsharded_bwd = megabatch_step(&model, &mb_unsharded, &mut unsharded_tape);
        t_unsharded.push(t.elapsed().as_nanos() as f64);
        t_unsharded_bwd.push(unsharded_bwd);

        // Composition layer: fresh structure build vs cached-structure
        // feature refill over the same parts.
        let t = std::time::Instant::now();
        std::hint::black_box(build_megabatch(&parts));
        t_compose_fresh.push(t.elapsed().as_nanos() as f64);

        let t = std::time::Instant::now();
        cached_composition.refill_features(&parts);
        std::hint::black_box(cached_composition.plan().n_paths);
        t_compose_refill.push(t.elapsed().as_nanos() as f64);

        // Epoch-1 / pre-scheduler behavior: compose + step, paired with the
        // epoch>=2 steady state (pre-composed, same tape). The two run back
        // to back with the order alternating per round, so slow machine
        // drift within a round cancels out of the median ratio.
        let time_fresh = |tape: &mut Graph| {
            let t = std::time::Instant::now();
            let mb_fresh = build_megabatch(&parts);
            std::hint::black_box(megabatch_step(&model, &mb_fresh, tape));
            t.elapsed().as_nanos() as f64
        };
        let time_pre = |tape: &mut Graph| {
            let t = std::time::Instant::now();
            std::hint::black_box(megabatch_step(&model, &mb, tape));
            t.elapsed().as_nanos() as f64
        };
        if round % 2 == 0 {
            t_fresh_compose_step.push(time_fresh(&mut fresh_compose_tape));
            t_precomposed_step.push(time_pre(&mut fresh_compose_tape));
        } else {
            t_precomposed_step.push(time_pre(&mut fresh_compose_tape));
            t_fresh_compose_step.push(time_fresh(&mut fresh_compose_tape));
        }

        // The same pair at small scale (state_dim=8, T=2), where planning
        // is a visible fraction of the step.
        let time_small_fresh = |tape: &mut Graph| {
            let t = std::time::Instant::now();
            let mb_fresh = build_megabatch(&small_parts);
            std::hint::black_box(megabatch_step(&small_model, &mb_fresh, tape));
            t.elapsed().as_nanos() as f64
        };
        let time_small_pre = |tape: &mut Graph| {
            let t = std::time::Instant::now();
            std::hint::black_box(megabatch_step(&small_model, &mb_small, tape));
            t.elapsed().as_nanos() as f64
        };
        if round % 2 == 0 {
            t_small_fresh.push(time_small_fresh(&mut small_tape));
            t_small_pre.push(time_small_pre(&mut small_tape));
        } else {
            t_small_pre.push(time_small_pre(&mut small_tape));
            t_small_fresh.push(time_small_fresh(&mut small_tape));
        }

        for (i, (_, tape)) in shard_tapes.iter_mut().enumerate() {
            let t = std::time::Instant::now();
            let backward_ns = megabatch_step(&model, &mb, tape);
            t_shard_step[i].push(t.elapsed().as_nanos() as f64);
            t_shard_bwd[i].push(backward_ns);
        }
        for (i, (_, tape)) in dense_seq_tapes.iter_mut().enumerate() {
            t_dense_seq_bwd[i].push(megabatch_step(&model, &mb_dense_seq, tape));
        }

        // Zero-copy on/off pair, alternating order per round.
        let time_zc = |tape: &mut Graph| {
            let t = std::time::Instant::now();
            zc_step(tape);
            t.elapsed().as_nanos() as f64
        };
        if round % 2 == 0 {
            t_zc_on.push(time_zc(&mut zc_on_tape));
            t_zc_off.push(time_zc(&mut zc_off_tape));
        } else {
            t_zc_off.push(time_zc(&mut zc_off_tape));
            t_zc_on.push(time_zc(&mut zc_on_tape));
        }

        // Bulk activation map: dispatched kernel vs scalar reference loop,
        // alternating order per round.
        let time_act = |kernel: fn(&[f32], &mut [f32]), dst: &mut Vec<f32>| {
            let t = std::time::Instant::now();
            kernel(&act_src, dst);
            std::hint::black_box(dst[dst.len() / 2]);
            t.elapsed().as_nanos() as f64
        };
        if round % 2 == 0 {
            t_act_simd.push(time_act(vact::tanh_map, &mut act_dst));
            t_act_scalar.push(time_act(vact::tanh_map_scalar, &mut act_dst));
        } else {
            t_act_scalar.push(time_act(vact::tanh_map_scalar, &mut act_dst));
            t_act_simd.push(time_act(vact::tanh_map, &mut act_dst));
        }

        // The adjacent overhead pair (see the tape definitions above).
        if round % 2 == 0 {
            t_ov_unsharded.push(megabatch_step(
                &model,
                &mb_unsharded,
                &mut ov_unsharded_tape,
            ));
            t_ov_dense.push(megabatch_step(&model, &mb, &mut ov_dense_tape));
        } else {
            t_ov_dense.push(megabatch_step(&model, &mb, &mut ov_dense_tape));
            t_ov_unsharded.push(megabatch_step(
                &model,
                &mb_unsharded,
                &mut ov_unsharded_tape,
            ));
        }
    }

    // Extra samples for the overhead pair alone: it feeds a ≤5% acceptance
    // criterion, so its minima need the best odds of catching an
    // uncontended run; each pair is only ~2 backward passes, far cheaper
    // than a full round.
    for round in 0..2 * ROUNDS {
        if round % 2 == 0 {
            t_ov_unsharded.push(megabatch_step(
                &model,
                &mb_unsharded,
                &mut ov_unsharded_tape,
            ));
            t_ov_dense.push(megabatch_step(&model, &mb, &mut ov_dense_tape));
        } else {
            t_ov_dense.push(megabatch_step(&model, &mb, &mut ov_dense_tape));
            t_ov_unsharded.push(megabatch_step(
                &model,
                &mb_unsharded,
                &mut ov_unsharded_tape,
            ));
        }
    }

    let (legacy, fused, unsharded) = (median(t_legacy), median(t_fused), median(t_unsharded));
    let unsharded_bwd = median(t_unsharded_bwd);
    let compose_fresh = median(t_compose_fresh);
    let compose_refill = median(t_compose_refill);
    let fresh_compose_step = median(t_fresh_compose_step);
    let precomposed_step = median(t_precomposed_step);
    let small_fresh = median(t_small_fresh);
    let small_pre = median(t_small_pre);
    let shard_step: Vec<f64> = t_shard_step.into_iter().map(median).collect();
    let shard_bwd: Vec<f64> = t_shard_bwd.into_iter().map(median).collect();
    let dense_seq_bwd: Vec<f64> = t_dense_seq_bwd.into_iter().map(median).collect();
    let zc_on = median(t_zc_on);
    let zc_off = median(t_zc_off);
    let act_scalar = median(t_act_scalar);
    let act_simd = median(t_act_simd);

    let mut rows: Vec<(String, f64)> = vec![
        ("before/legacy_per_sample".into(), legacy),
        ("after/fused_tape_reuse".into(), fused),
        ("after/megabatch_unsharded".into(), unsharded),
        ("backward/unsharded".into(), unsharded_bwd),
        ("compose/fresh_build".into(), compose_fresh),
        ("compose/cached_refill".into(), compose_refill),
        // Epoch-1 behavior: per-step compose + step, paired with the
        // epoch>=2 steady state (same tape, pre-composed megabatch, zero
        // per-step structure work) — at paper scale and at small scale.
        ("after/megabatch_fresh_compose".into(), fresh_compose_step),
        ("after/megabatch_precomposed".into(), precomposed_step),
        ("small/megabatch_fresh_compose".into(), small_fresh),
        ("small/megabatch_precomposed".into(), small_pre),
        ("after/megabatch".into(), shard_step[0]),
        // PR-9: the zero-copy index mode pair and the bulk activation map
        // pair (the latter's "avx2" row falls back to the scalar kernel on
        // hosts without AVX2 — the derived key below flags that).
        ("step_zero_copy/on".into(), zc_on),
        ("step_zero_copy/off".into(), zc_off),
        ("activation_map/scalar".into(), act_scalar),
        ("activation_map/avx2".into(), act_simd),
    ];
    for (i, &w) in shard_workers.iter().enumerate() {
        rows.push((format!("parallel_backward/shards_{w}"), shard_step[i]));
        // backward/shards_N: per-sample shards only, dense work sequential
        // (the PR-3 layout, kept for cross-PR comparability);
        // backward_dense/shards_N: the fully-parallel backward with the
        // dense GRU/readout work row-blocked across the same gang.
        rows.push((format!("backward/shards_{w}"), dense_seq_bwd[i]));
        rows.push((format!("backward_dense/shards_{w}"), shard_bwd[i]));
    }
    let results: Vec<Measurement> = rows
        .iter()
        .map(|(id, ns)| Measurement {
            id: id.clone(),
            ns_per_op: *ns,
            ops_per_sec: 1.0e9 / ns,
        })
        .collect();
    for m in &results {
        eprintln!(
            "bench training_step/{:<34} {:>14.0} ns/op {:>10.2} ops/s",
            m.id, m.ns_per_op, m.ops_per_sec
        );
    }
    let speedup_mega = legacy / shard_step[0];
    let speedup_fused = legacy / fused;
    // backward_speedup_* keeps its historical family (backward/shards_N =
    // per-sample shards only, dense sequential — what the rows measured in
    // earlier PRs); the fully-parallel layout's scaling gets its own
    // backward_dense_speedup_* keys.
    let backward_speedup_2 = dense_seq_bwd[0] / dense_seq_bwd[1];
    let backward_speedup_4 = dense_seq_bwd[0] / dense_seq_bwd[2];
    let backward_speedup_8 = dense_seq_bwd[0] / dense_seq_bwd[3];
    let backward_dense_speedup_2 = shard_bwd[0] / shard_bwd[1];
    let backward_dense_speedup_4 = shard_bwd[0] / shard_bwd[2];
    let backward_dense_speedup_8 = shard_bwd[0] / shard_bwd[3];
    let step_speedup_4 = shard_step[0] / shard_step[2];
    // Canonical sharded reduction (now including the dense GRU/readout row
    // blocking) vs the legacy kernels on one thread, backward to backward
    // (the step-level ratio folds in forward noise): positive percentage =
    // overhead (acceptance: <= 5%). Computed from the ADJACENT
    // alternating-order pair, and as a ratio of MINIMA rather than
    // medians: on this shared runner, scheduler interference adds 10-25%
    // to individual ~100 ms measurements often enough to swamp a 5%
    // criterion in either direction, while the per-variant minimum
    // approaches the true uncontended cost (interference only ever adds
    // time — the `timeit`/hyperfine argument).
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let single_shard_overhead_pct = (best(&t_ov_dense) / best(&t_ov_unsharded) - 1.0) * 100.0;
    let single_shard_step_overhead_pct = (shard_step[0] / unsharded - 1.0) * 100.0;
    // The dense sequential tail: at the top of the worker ladder the
    // per-sample-sharded backward still runs the dense link/node GRU
    // updates and the readout MLP on one thread; the fully-parallel
    // backward row-blocks them. Their relative gap is the Amdahl fraction
    // the dense sharding removes (≈0 — pure noise — on a 1-core host;
    // multi-core CI is where this number is meaningful).
    let top = shard_workers.len() - 1;
    let dense_sequential_fraction = (dense_seq_bwd[top] - shard_bwd[top]) / dense_seq_bwd[top];
    // Composition-layer ratios. Cached refill vs fresh build is measured
    // directly (both are sub-ms and stable). The paper-scale epoch>=2 step
    // speedup is assembled from the component medians — compose cost is
    // ~0.3% of a paper-scale step, far below what the difference of two
    // ~150ms timings resolves on a shared/throttled runner — while the
    // small-scale pair (planning a visible step fraction) is a direct
    // median-of-alternating-pairs measurement.
    let compose_refill_speedup = compose_fresh / compose_refill;
    let epoch2_step_speedup = (precomposed_step + compose_fresh) / precomposed_step;
    let small_epoch2_step_speedup = small_fresh / small_pre;
    let compose_pct_of_step = compose_fresh / precomposed_step * 100.0;
    let compose_pct_of_small_step = compose_fresh / small_pre * 100.0;
    eprintln!(
        "speedup legacy->megabatch: {speedup_mega:.2}x; backward shards 1->4: \
         {backward_speedup_4:.2}x (2: {backward_speedup_2:.2}x, 8: {backward_speedup_8:.2}x; \
         fully-parallel dense 4: {backward_dense_speedup_4:.2}x); \
         single-shard overhead {single_shard_overhead_pct:+.1}%; \
         dense sequential fraction {dense_sequential_fraction:+.3}; \
         compose fresh->refill {compose_refill_speedup:.1}x, epoch>=2 step \
         {epoch2_step_speedup:.4}x (small-scale {small_epoch2_step_speedup:.3}x, \
         compose = {compose_pct_of_small_step:.1}% of the small step) \
         [{} cores available]",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let bench_host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut derived: Vec<(&str, f64)> = vec![
        ("speedup_megabatch_vs_legacy", speedup_mega),
        ("speedup_fused_tape_reuse_vs_legacy", speedup_fused),
    ];
    if bench_host_cores > 1 {
        // The shard-scaling ratios only mean something when the gang can
        // actually run in parallel; on a 1-core host every "speedup" is a
        // ratio of two serialized timings — pure scheduler noise that has
        // been misread as a regression before. Omit them and leave a
        // marker instead so downstream tooling can tell "not measured"
        // from "measured at 1.0x".
        derived.extend([
            ("backward_speedup_2_shards_vs_1", backward_speedup_2),
            ("backward_speedup_4_shards_vs_1", backward_speedup_4),
            ("backward_speedup_8_shards_vs_1", backward_speedup_8),
            (
                "backward_dense_speedup_2_shards_vs_1",
                backward_dense_speedup_2,
            ),
            (
                "backward_dense_speedup_4_shards_vs_1",
                backward_dense_speedup_4,
            ),
            (
                "backward_dense_speedup_8_shards_vs_1",
                backward_dense_speedup_8,
            ),
            ("step_speedup_4_shards_vs_1", step_speedup_4),
            ("dense_sequential_fraction", dense_sequential_fraction),
        ]);
    } else {
        derived.push(("speedups_suppressed_single_core", 1.0));
    }
    derived.extend([
        // Overhead percentages stay unconditional: they compare the sharded
        // machinery against the legacy kernels on the SAME single thread,
        // which a 1-core host measures fine.
        ("single_shard_overhead_pct", single_shard_overhead_pct),
        (
            "single_shard_step_overhead_pct",
            single_shard_step_overhead_pct,
        ),
        ("compose_refill_speedup_vs_fresh", compose_refill_speedup),
        ("epoch2_step_speedup_vs_fresh_compose", epoch2_step_speedup),
        (
            "small_epoch2_step_speedup_vs_fresh_compose",
            small_epoch2_step_speedup,
        ),
        ("epoch2_structure_ns_eliminated_per_step", compose_fresh),
        ("compose_fresh_pct_of_step", compose_pct_of_step),
        ("compose_fresh_pct_of_small_step", compose_pct_of_small_step),
        // Zero-copy step ratio (off/on, > 1 = zero-copy faster): both sides
        // run on one thread, so a 1-core host measures it fine. Bitwise
        // identity between the modes is pinned by the test suite, so this
        // ratio is pure index-traffic cost.
        ("zero_copy_step_ratio", zc_off / zc_on),
        ("bench_host_cores", bench_host_cores as f64),
    ]);
    if rn_tensor::simd::have_avx2() {
        derived.push(("activation_speedup", act_scalar / act_simd));
    } else {
        // Without AVX2 the dispatched kernel IS the scalar loop; a ~1.0x
        // "speedup" there would be noise masquerading as a regression.
        derived.push(("activation_speedup_suppressed_no_avx2", 1.0));
    }
    criterion::write_report_with_derived("training_step", &results, &derived);
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
