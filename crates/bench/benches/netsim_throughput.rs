//! Criterion bench: packet-level simulator throughput.
//!
//! Measures wall time to simulate fixed scenarios; the derived metric of
//! interest is simulated events per second (each delivered packet costs about
//! two events per hop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_netgraph::{topologies, Routing, TrafficMatrix};
use rn_netsim::{simulate, FaultPlan, SimConfig};
use rn_tensor::Prng;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    for (name, topo) in [
        ("nsfnet", topologies::nsfnet_default()),
        ("geant2", topologies::geant2_default()),
    ] {
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(1);
        let traffic = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.7);
        let caps = vec![16usize; topo.num_nodes()];
        let config = SimConfig {
            duration_s: 100.0,
            warmup_s: 10.0,
            seed: 7,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("simulate_100s", name), &topo, |b, topo| {
            b.iter(|| {
                let r =
                    simulate(topo, &routing, &traffic, &caps, &config, &FaultPlan::none()).unwrap();
                assert!(r.conservation_holds());
                r.total_delivered
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
