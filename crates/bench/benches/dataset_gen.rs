//! Criterion bench: end-to-end dataset sample generation (routing + traffic +
//! queue assignment + packet-level simulation + label extraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_dataset::{generate_sample, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;

fn bench_dataset_gen(c: &mut Criterion) {
    let gen = GeneratorConfig {
        sim: SimConfig {
            duration_s: 120.0,
            warmup_s: 20.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let mut group = c.benchmark_group("dataset_gen");
    group.sample_size(10);
    for (name, topo) in [
        ("toy5", topologies::toy5()),
        ("nsfnet", topologies::nsfnet_default()),
    ] {
        group.bench_with_input(BenchmarkId::new("sample_120s", name), &topo, |b, topo| {
            let mut idx = 0u64;
            b.iter(|| {
                idx += 1;
                generate_sample(topo, &gen, 99, idx).num_paths()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataset_gen);
criterion_main!(benches);
