//! Criterion bench: the tensor/autograd primitives that dominate the
//! message-passing hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use rn_autograd::Graph;
use rn_tensor::{Matrix, Prng};

fn bench_ops(c: &mut Criterion) {
    let mut rng = Prng::new(1);
    // Shapes matching a GEANT2 sweep step: 552 paths, state 16.
    let paths = rng.uniform_matrix(552, 32, -1.0, 1.0);
    let weights = rng.uniform_matrix(32, 16, -1.0, 1.0);
    let indices: Vec<usize> = (0..552).map(|i| (i * 7) % 74).collect();
    let states = rng.uniform_matrix(74, 16, -1.0, 1.0);
    let msgs = rng.uniform_matrix(552, 16, -1.0, 1.0);

    let mut group = c.benchmark_group("autograd_ops");
    group.bench_function("matmul_552x32x16", |b| b.iter(|| paths.matmul(&weights)));
    group.bench_function("gather_552_from_74", |b| {
        b.iter(|| states.gather_rows(&indices))
    });
    group.bench_function("segment_sum_552_to_74", |b| {
        b.iter(|| msgs.segment_sum(&indices, 74))
    });
    group.bench_function("gru_step_tape_552x16", |b| {
        let mut init_rng = Prng::new(2);
        let cell = rn_nn::GruCell::new(&mut init_rng, 16, 16);
        let h0 = Prng::new(3).uniform_matrix(552, 16, -1.0, 1.0);
        let x0 = Prng::new(4).uniform_matrix(552, 16, -1.0, 1.0);
        b.iter(|| {
            use rn_nn::Layer;
            let mut g = Graph::new();
            let bound = cell.bind(&mut g);
            let h = g.constant(h0.clone());
            let x = g.constant(x0.clone());
            let h2 = bound.step(&mut g, h, x);
            g.value(h2).sum()
        })
    });
    group.bench_function("backward_mlp_552x16", |b| {
        let mut init_rng = Prng::new(5);
        let mlp = rn_nn::Mlp::new(
            &mut init_rng,
            &[16, 32, 32, 1],
            rn_nn::Activation::Selu,
            rn_nn::Activation::Identity,
        );
        let x0 = Prng::new(6).uniform_matrix(552, 16, -1.0, 1.0);
        b.iter(|| {
            use rn_nn::Layer;
            let mut g = Graph::new();
            let bound = mlp.bind(&mut g);
            let x = g.constant(x0.clone());
            let y = bound.forward(&mut g, x);
            let loss = g.mean(y);
            g.backward(loss);
            g.len()
        })
    });
    group.finish();

    // Keep the borrow checker quiet about the unused helper matrix.
    let _ = Matrix::zeros(1, 1);
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
