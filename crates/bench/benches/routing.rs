//! Criterion bench: routing-scheme computation (all-pairs Dijkstra).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_netgraph::{topologies, Routing};
use rn_tensor::Prng;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for (name, topo) in [
        ("nsfnet", topologies::nsfnet_default()),
        ("geant2", topologies::geant2_default()),
        ("abilene", topologies::abilene_default()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("all_pairs_shortest", name),
            &topo,
            |b, topo| b.iter(|| Routing::shortest_paths(topo).num_paths()),
        );
        group.bench_with_input(
            BenchmarkId::new("all_pairs_randomized", name),
            &topo,
            |b, topo| {
                let mut rng = Prng::new(42);
                b.iter(|| Routing::randomized(topo, &mut rng).num_paths())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
