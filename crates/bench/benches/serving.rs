//! Serving benchmark: the load generator driven against the TCP frontend on
//! paper-scale topologies, three ways:
//!
//! 1. **direct predict loop** — in-process, pre-planned, one `predict` per
//!    request on one thread: the raw inference floor, no service anywhere.
//! 2. **naive single-request loop** — the pre-serving usage pattern over the
//!    wire: one connection, one request in flight, the full scenario JSON
//!    serialized, shipped, parsed and planned per query.
//! 3. **concurrent cached serving** — the intended pattern: clients register
//!    scenarios once, then stream fingerprint queries that hit the plan
//!    cache and ride shared dynamic batches.
//! 4. **overload at 2× queue capacity** — a deliberately starved service
//!    (one slowed worker, tiny admission queue) under twice its capacity in
//!    closed-loop clients: records the measured reject rate, retry rate and
//!    client-observed p99 while load shedding, plus the server's `rejected`
//!    counter — overload behavior as data, not as an assumption.
//!
//! Writes `BENCH_serving.json` (req/s for the first three, exact
//! client-side latency percentiles, batch occupancy, cache hit rate, the
//! overload row, the server's own metrics snapshot) alongside the other
//! BENCH artifacts.
//!
//! Knobs: `RN_SERVE_TOPOLOGY` (nsfnet|geant2), `RN_SERVE_SCENARIOS`,
//! `RN_SERVE_CLIENTS`, `RN_SERVE_REQUESTS` (per client),
//! `RN_SERVE_NAIVE_REQUESTS`, `RN_SERVE_OVERLOAD_QUEUE_CAPACITY`,
//! `RN_STATE_DIM`, `RN_MP_ITERS`, `RN_SERVE_SIM_DURATION_S`,
//! `BENCH_OUT_DIR`.

use rn_bench::{env_f64, env_usize};
use rn_dataset::Dataset;
use rn_serve::loadgen::demo_scenarios;
use rn_serve::{
    run_loadgen, ChaosPlan, LoadMode, LoadgenConfig, LoadgenReport, MetricsSnapshot, ServeConfig,
    Service, TcpServer,
};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchConfig {
    topology: String,
    scenarios: usize,
    clients: usize,
    requests_per_client: usize,
    naive_requests: usize,
    state_dim: usize,
    mp_iterations: usize,
    workers: usize,
    max_batch: usize,
    overload_queue_capacity: usize,
}

/// The overload phase's results: load shedding measured at 2× queue
/// capacity in offered closed-loop clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OverloadReport {
    /// Clients offered (2× the overload service's queue capacity).
    offered_clients: usize,
    /// The overload service's admission-queue capacity.
    queue_capacity: usize,
    /// Fraction of wire attempts answered `Overloaded`.
    reject_rate: f64,
    /// Backoff retries per wire attempt.
    retry_rate: f64,
    /// Fraction of wire attempts answered `DeadlineExceeded`.
    timeout_rate: f64,
    /// Client-observed p99 (ms) under overload, backoff waits included.
    p99_ms: f64,
    /// Requests that ultimately succeeded (within the retry budget).
    requests: u64,
    /// Requests abandoned after exhausting retries.
    gave_up: u64,
    /// The overload server's `rejected` counter at the end of the phase.
    server_rejected: u64,
    /// The overload server's `deadline_expired` counter.
    server_deadline_expired: u64,
    /// Full client-side report for the phase.
    loadgen: LoadgenReport,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServingBenchReport {
    group: String,
    config: BenchConfig,
    /// In-process single-thread predict loop over pre-built plans (req/s).
    direct_predict_loop_rps: f64,
    /// TCP, 1 client, full scenario JSON per request.
    naive_single_request_loop: LoadgenReport,
    /// TCP, N clients, fingerprint queries through the plan cache.
    concurrent_cached: LoadgenReport,
    /// `concurrent_cached.rps / naive_single_request_loop.rps`.
    speedup_vs_naive_loop: f64,
    /// `concurrent_cached.rps / direct_predict_loop_rps`.
    speedup_vs_direct_loop: f64,
    /// Mean requests per dynamic batch during the concurrent phase only.
    serving_batch_occupancy: f64,
    /// Plan-cache hit rate over the whole run.
    cache_hit_rate: f64,
    /// Composition-cache hit rate: multi-request batches that reused a
    /// cached block-diagonal structure (feature refill only) instead of a
    /// fresh `build_megabatch`.
    compose_hit_rate: f64,
    /// Distinct multi-request batch shapes the run produced.
    distinct_batch_shapes: usize,
    /// Load-shedding behavior at 2× queue capacity (separate starved
    /// service instance; does not perturb the throughput phases above).
    overload_2x_capacity: OverloadReport,
    /// The server's own counters at the end of the run.
    server_metrics: MetricsSnapshot,
}

/// Run a loadgen phase `n` times and keep the highest-throughput run —
/// both phases get the same treatment, damping scheduler noise on shared
/// build machines the way criterion's median-of-samples does.
fn best_of(n: usize, mut run: impl FnMut() -> LoadgenReport) -> LoadgenReport {
    let mut best: Option<LoadgenReport> = None;
    for _ in 0..n.max(1) {
        let r = run();
        if best.as_ref().map(|b| r.rps > b.rps).unwrap_or(true) {
            best = Some(r);
        }
    }
    best.expect("at least one run")
}

fn main() {
    let config = BenchConfig {
        topology: std::env::var("RN_SERVE_TOPOLOGY").unwrap_or_else(|_| "nsfnet".into()),
        scenarios: env_usize("RN_SERVE_SCENARIOS", 4),
        // Enough concurrency to keep batches >1 deep; more clients than
        // cores only adds scheduler churn to the measurement.
        clients: env_usize(
            "RN_SERVE_CLIENTS",
            2 * std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        ),
        requests_per_client: env_usize("RN_SERVE_REQUESTS", 48),
        naive_requests: env_usize("RN_SERVE_NAIVE_REQUESTS", 48),
        state_dim: env_usize("RN_STATE_DIM", 16),
        mp_iterations: env_usize("RN_MP_ITERS", 4),
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        max_batch: env_usize("RN_SERVE_MAX_BATCH", 8),
        overload_queue_capacity: env_usize("RN_SERVE_OVERLOAD_QUEUE_CAPACITY", 8),
    };
    let sim_s = env_f64("RN_SERVE_SIM_DURATION_S", 60.0);

    eprintln!(
        "[serving] generating {} {} scenarios ...",
        config.scenarios, config.topology
    );
    let (topology, samples) =
        demo_scenarios(&config.topology, config.scenarios, sim_s, 2019).expect("scenarios");
    let ds = Dataset {
        topology,
        samples: samples.clone(),
    };
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: config.state_dim,
        mp_iterations: config.mp_iterations,
        readout_hidden: 2 * config.state_dim,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);

    // ---- 1. direct in-process predict loop --------------------------------
    let plans: Vec<SamplePlan> = samples.iter().map(|s| model.plan(s)).collect();
    let direct_requests = config.clients * config.requests_per_client;
    // Warm up kernels and the allocator before timing.
    for p in &plans {
        std::hint::black_box(model.predict(p));
    }
    let t0 = Instant::now();
    for i in 0..direct_requests {
        std::hint::black_box(model.predict(&plans[i % plans.len()]));
    }
    let direct_predict_loop_rps = direct_requests as f64 / t0.elapsed().as_secs_f64();
    eprintln!("[serving] direct predict loop: {direct_predict_loop_rps:.1} req/s");

    // ---- service under test ----------------------------------------------
    let overload_model = model.clone();
    let service = Service::start(
        model,
        ServeConfig {
            workers: config.workers,
            max_batch: config.max_batch,
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    // ---- 2. naive single-request loop -------------------------------------
    eprintln!(
        "[serving] naive single-request loop ({} requests) ...",
        config.naive_requests
    );
    let naive = best_of(env_usize("RN_SERVE_RUNS", 2), || {
        run_loadgen(
            &LoadgenConfig {
                clients: 1,
                requests_per_client: config.naive_requests,
                mode: LoadMode::Naive,
                ..LoadgenConfig::new(addr.clone())
            },
            &samples,
        )
        .expect("naive loadgen")
    });
    eprintln!(
        "[serving] naive: {:.1} req/s, p50 {:.2} ms",
        naive.rps, naive.latency.p50_ms
    );
    let after_naive = handle.metrics();

    // ---- 3. concurrent cached serving --------------------------------------
    eprintln!(
        "[serving] concurrent cached ({} clients x {} requests) ...",
        config.clients, config.requests_per_client
    );
    let cached = best_of(env_usize("RN_SERVE_RUNS", 2), || {
        run_loadgen(
            &LoadgenConfig {
                clients: config.clients,
                requests_per_client: config.requests_per_client,
                mode: LoadMode::Cached,
                ..LoadgenConfig::new(addr.clone())
            },
            &samples,
        )
        .expect("cached loadgen")
    });
    eprintln!(
        "[serving] cached: {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms",
        cached.rps, cached.latency.p50_ms, cached.latency.p99_ms
    );
    let server_metrics = handle.metrics();

    // Occupancy of the concurrent phase alone (deltas against the naive
    // phase, whose one-in-flight client pins occupancy to ~1).
    let d_completed = server_metrics
        .completed
        .saturating_sub(after_naive.completed);
    let d_batches = server_metrics.batches.saturating_sub(after_naive.batches);
    let serving_batch_occupancy = if d_batches > 0 {
        d_completed as f64 / d_batches as f64
    } else {
        0.0
    };

    // ---- 4. overload at 2x queue capacity ----------------------------------
    // A separate, deliberately starved instance: one worker slowed by an
    // injected ~1.5 ms batch delay and a tiny admission queue, offered twice
    // its queue capacity in closed-loop clients. This guarantees real load
    // shedding so the reject/retry/p99 numbers measure the backpressure
    // path, not an idle queue.
    let overload_capacity = config.overload_queue_capacity.max(1);
    let overload_clients = 2 * overload_capacity;
    eprintln!(
        "[serving] overload: {} clients against queue capacity {} ...",
        overload_clients, overload_capacity
    );
    let overload_service = Service::start(
        overload_model,
        ServeConfig {
            workers: 1,
            max_batch: 2,
            queue_capacity: overload_capacity,
            chaos: ChaosPlan::none()
                .with_batch_delay(std::time::Duration::from_micros(1_500))
                .with_seed(2019),
            ..ServeConfig::default()
        },
    );
    let overload_handle = overload_service.handle();
    let overload_server =
        TcpServer::bind(overload_service.handle(), "127.0.0.1:0").expect("bind overload");
    let overload_loadgen = run_loadgen(
        &LoadgenConfig {
            clients: overload_clients,
            requests_per_client: env_usize("RN_SERVE_OVERLOAD_REQUESTS", 32),
            mode: LoadMode::Cached,
            max_retries: 4,
            backoff_base_ms: 2,
            ..LoadgenConfig::new(overload_server.local_addr().to_string())
        },
        &samples,
    )
    .expect("overload loadgen");
    let overload_server_metrics = overload_handle.metrics();
    overload_server.stop();
    overload_service.shutdown();
    eprintln!(
        "[serving] overload: reject rate {:.3}, retry rate {:.3}, p99 {:.2} ms, \
         {} server-side rejects",
        overload_loadgen.reject_rate,
        overload_loadgen.retry_rate,
        overload_loadgen.latency.p99_ms,
        overload_server_metrics.rejected
    );
    let overload_2x_capacity = OverloadReport {
        offered_clients: overload_clients,
        queue_capacity: overload_capacity,
        reject_rate: overload_loadgen.reject_rate,
        retry_rate: overload_loadgen.retry_rate,
        timeout_rate: overload_loadgen.timeout_rate,
        p99_ms: overload_loadgen.latency.p99_ms,
        requests: overload_loadgen.requests,
        gave_up: overload_loadgen.gave_up,
        server_rejected: overload_server_metrics.rejected,
        server_deadline_expired: overload_server_metrics.deadline_expired,
        loadgen: overload_loadgen,
    };

    let report = ServingBenchReport {
        group: "serving".into(),
        speedup_vs_naive_loop: if naive.rps > 0.0 {
            cached.rps / naive.rps
        } else {
            0.0
        },
        speedup_vs_direct_loop: if direct_predict_loop_rps > 0.0 {
            cached.rps / direct_predict_loop_rps
        } else {
            0.0
        },
        serving_batch_occupancy,
        cache_hit_rate: server_metrics.cache_hit_rate,
        compose_hit_rate: server_metrics.compose_hit_rate,
        distinct_batch_shapes: server_metrics.batch_shapes.len(),
        overload_2x_capacity,
        config,
        direct_predict_loop_rps,
        naive_single_request_loop: naive,
        concurrent_cached: cached,
        server_metrics,
    };

    server.stop();
    service.shutdown();

    let out_dir = std::env::var("BENCH_OUT_DIR")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let path = std::path::Path::new(&out_dir).join("BENCH_serving.json");
    std::fs::write(&path, serde_json::to_string(&report).expect("serialize"))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!(
        "[serving] speedup vs naive loop: {:.2}x (occupancy {:.2}, plan cache hit rate {:.2}, \
         composition hit rate {:.2} over {} shapes) -> {}",
        report.speedup_vs_naive_loop,
        report.serving_batch_occupancy,
        report.cache_hit_rate,
        report.compose_hit_rate,
        report.distinct_batch_shapes,
        path.display()
    );
}
