//! Criterion bench: RouteNet forward-pass latency per sample graph.
//!
//! The paper's pitch is that RouteNet matches simulator accuracy "with a very
//! low computational cost"; this bench quantifies that cost for both model
//! variants and both evaluation topologies, plus the fused megabatch path
//! that serves batched inference in production. The criterion stand-in
//! writes `BENCH_inference.json` (ns/op + throughput per variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_dataset::{generate_sample, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use routenet::entities::SamplePlan;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, OriginalRouteNet};

fn quick_gen() -> GeneratorConfig {
    GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    }
}

fn small_model() -> ModelConfig {
    ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 32,
        ..ModelConfig::default()
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    for (name, topo) in [
        ("nsfnet", topologies::nsfnet_default()),
        ("geant2", topologies::geant2_default()),
    ] {
        let sample = generate_sample(&topo, &quick_gen(), 3, 0);
        let ds = Dataset {
            topology: topo.clone(),
            samples: vec![sample],
        };

        let mut ext = ExtendedRouteNet::new(small_model());
        ext.fit_preprocessing(&ds, 5);
        let plan_e = ext.plan(&ds.samples[0]);
        group.bench_with_input(BenchmarkId::new("extended", name), &plan_e, |b, plan| {
            b.iter(|| ext.predict(plan))
        });

        // Batched inference: 8 copies of the sample through one fused
        // block-diagonal pass on a pooled tape, as the evaluation path runs
        // it (per-sample cost is ns/op divided by 8).
        let batch: Vec<SamplePlan> = (0..8).map(|_| plan_e.clone()).collect();
        let mut batch_tape = rn_autograd::Graph::new();
        group.bench_with_input(
            BenchmarkId::new("extended_megabatch8", name),
            &batch,
            |b, batch| b.iter(|| ext.predict_batch_with(&mut batch_tape, batch)),
        );

        let mut orig = OriginalRouteNet::new(small_model());
        orig.fit_preprocessing(&ds, 5);
        let plan_o = orig.plan(&ds.samples[0]);
        group.bench_with_input(BenchmarkId::new("original", name), &plan_o, |b, plan| {
            b.iter(|| orig.predict(plan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
