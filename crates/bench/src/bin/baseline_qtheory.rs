//! **E6 (beyond paper)** — the queueing-theory baseline.
//!
//! The paper's introduction motivates learned models by claiming traditional
//! queueing theory "often fail\[s\] to provide accurate models for complex
//! real-world scenarios". This experiment quantifies the claim: a per-hop
//! M/M/1/K decomposition predictor (`rn-qtheory`) is evaluated on the same
//! held-out datasets as the RouteNets. If figure2 has been run, its saved
//! reports are included for a side-by-side table.
//!
//! Run: `cargo run --release -p rn-bench --bin baseline_qtheory`

use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use rn_qtheory::PathDelayPredictor;
use routenet::eval::{evaluate_baseline, EvalReport};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let (geant2, nsfnet) = paper_topologies();
    let gen = cfg.generator();
    let eval_geant2 = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");
    let eval_nsfnet = cached_dataset(&nsfnet, &gen, cfg.seed ^ 0xEEE2, cfg.eval_samples, "eval");

    println!("=== E6: analytical M/M/1/K baseline vs learned models ===\n");
    let predictor = PathDelayPredictor::new(gen.sim.mean_packet_bits);

    let mut reports = Vec::new();
    for (ds, name, topo) in [
        (&eval_geant2, "geant2", &geant2),
        (&eval_nsfnet, "nsfnet", &nsfnet),
    ] {
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for sample in &ds.samples {
            // Rebuild the per-sample topology capacities before predicting.
            let mut sample_topo = topo.clone();
            for (l, &c) in sample.link_capacities.iter().enumerate() {
                sample_topo.set_link_capacity(l, c);
            }
            let preds = predictor.predict(
                &sample_topo,
                &sample.routing,
                &sample.traffic,
                &sample.queue_capacities,
            );
            for ((_, _, pred), target) in preds.iter().zip(&sample.targets) {
                if target.is_reliable(10) && target.mean_delay_s > 0.0 {
                    pairs.push((*pred, target.mean_delay_s));
                }
            }
        }
        let report = evaluate_baseline("mm1k-decomp", name, &pairs);
        println!("{}", report.summary_line());
        reports.push(report);
    }

    // Include figure2's learned-model rows when available.
    let fig2 = std::path::Path::new("target/rn-results/figure2_reports.json");
    if fig2.exists() {
        match routenet::persist::load_model::<Vec<EvalReport>>(fig2) {
            Ok(learned) => {
                println!("\nlearned models (from the last figure2 run):");
                for r in &learned {
                    println!("{}", r.summary_line());
                }
                // Shape check. The decomposition is near-exact on lightly
                // loaded paths (the median is dominated by those), but the
                // paper's claim — QT "often fails … for complex scenarios" —
                // is about the congested tail, where its independence
                // assumptions collapse. So the verdict compares p90/p95.
                if let (Some(qt), Some(ext)) = (
                    reports.iter().find(|r| r.dataset == "geant2"),
                    learned
                        .iter()
                        .find(|r| r.model == "extended" && r.dataset == "geant2"),
                ) {
                    let tail_ok = ext.abs_rel_summary.p90 < qt.abs_rel_summary.p90;
                    println!(
                        "\n  [{}] extended RouteNet beats M/M/1/K on congested paths (p90 |rel|: {:.3} vs {:.3})",
                        if tail_ok { "PASS" } else { "FAIL" },
                        ext.abs_rel_summary.p90,
                        qt.abs_rel_summary.p90
                    );
                    let mae_ok = ext.mae_s < qt.mae_s;
                    println!(
                        "  [{}] extended RouteNet has lower overall MAE ({:.4}s vs {:.4}s)",
                        if mae_ok { "PASS" } else { "FAIL" },
                        ext.mae_s,
                        qt.mae_s
                    );
                    println!(
                        "  note: medians ({:.3} vs {:.3}) are close — most paths cross only",
                        ext.median_abs_rel(),
                        qt.median_abs_rel()
                    );
                    println!("  lightly-loaded links where M/M/1/K decomposition is near-exact.");
                }
            }
            Err(e) => eprintln!("could not load figure2 reports: {e}"),
        }
    } else {
        println!("\n(run the figure2 binary first to add learned-model rows to this table)");
    }

    std::fs::create_dir_all("target/rn-results").ok();
    routenet::persist::save_model(
        &reports,
        std::path::Path::new("target/rn-results/baseline_qtheory.json"),
    )
    .ok();
}
