//! **E7 (beyond paper)** — accuracy vs. entity state dimensionality.
//!
//! RouteNet used 32-dimensional states; our scaled-down default is 16. This
//! sweep checks how much head-room the state width leaves at the reproduced
//! scale, and how parameter count and training cost grow with it.
//!
//! Run: `cargo run --release -p rn-bench --bin ablation_hidden_dim`

use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use rn_nn::Layer;
use routenet::{evaluate, train, ExtendedRouteNet};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.train_samples = rn_bench::env_usize("RN_TRAIN_SAMPLES", 96);
    cfg.epochs = rn_bench::env_usize("RN_EPOCHS", 8);

    let (geant2, _) = paper_topologies();
    let gen = cfg.generator();
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let eval_set = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");

    println!("=== E7: extended RouteNet accuracy vs state dimensionality ===\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>12}",
        "dim", "params", "median|rel|", "p90|rel|", "train (s)"
    );
    for dim in [4usize, 8, 16, 32] {
        let mut model_cfg = cfg.model();
        model_cfg.state_dim = dim;
        model_cfg.readout_hidden = 2 * dim;
        let mut model = ExtendedRouteNet::new(model_cfg);
        let params = model.param_count();
        let t0 = std::time::Instant::now();
        train(&mut model, &train_set, None, &cfg.training());
        let train_secs = t0.elapsed().as_secs_f64();
        let report = evaluate(&model, &eval_set, "geant2", 10);
        println!(
            "{:>6} {:>12} {:>14.4} {:>14.4} {:>12.1}",
            dim,
            params,
            report.median_abs_rel(),
            report.abs_rel_summary.p90,
            train_secs
        );
    }
    println!(
        "\nExpected shape: accuracy improves with width then saturates; cost grows ~quadratically."
    );
}
