//! **E5 (beyond paper)** — node-update aggregation ablation.
//!
//! The paper's text says node states are updated from "an element-wise
//! summation of all the path states associated to the node". Read literally,
//! that is the *final* path state; read symmetrically with RouteNet's link
//! update, it is the path-RNN hidden state *at the node's position*. The two
//! are different models. This experiment trains both and compares.
//!
//! Run: `cargo run --release -p rn-bench --bin ablation_node_update`

use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use routenet::{evaluate, train, ExtendedRouteNet, NodeUpdate};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.train_samples = rn_bench::env_usize("RN_TRAIN_SAMPLES", 96);
    cfg.epochs = rn_bench::env_usize("RN_EPOCHS", 8);

    let (geant2, nsfnet) = paper_topologies();
    let gen = cfg.generator();
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let eval_geant2 = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");
    let eval_nsfnet = cached_dataset(&nsfnet, &gen, cfg.seed ^ 0xEEE2, cfg.eval_samples, "eval");

    println!("=== E5: node-update aggregation — positional messages vs final path-state sum ===\n");
    println!(
        "{:<22} {:>16} {:>16} {:>16}",
        "variant", "geant2 med|rel|", "nsfnet med|rel|", "train (s)"
    );
    for (name, variant) in [
        ("positional-messages", NodeUpdate::PositionalMessages),
        ("final-path-state-sum", NodeUpdate::FinalPathStateSum),
    ] {
        let mut model_cfg = cfg.model();
        model_cfg.node_update = variant;
        let mut model = ExtendedRouteNet::new(model_cfg);
        let t0 = std::time::Instant::now();
        train(&mut model, &train_set, None, &cfg.training());
        let train_secs = t0.elapsed().as_secs_f64();
        let rg = evaluate(&model, &eval_geant2, "geant2", 10);
        let rn = evaluate(&model, &eval_nsfnet, "nsfnet", 10);
        println!(
            "{:<22} {:>16.4} {:>16.4} {:>16.1}",
            name,
            rg.median_abs_rel(),
            rn.median_abs_rel(),
            train_secs
        );
    }
    println!("\nBoth variants see queue sizes, so both should beat the original model;");
    println!("positional messages give the node update per-hop context and usually win.");
}
