//! **E4 (beyond paper)** — accuracy vs. message-passing iterations `T`.
//!
//! RouteNet fixes T = 8; the paper does not ablate it. Too few iterations
//! starve distant entities of information (a path's state can only reflect
//! links within T rounds of influence); too many cost linearly more compute.
//! This sweep quantifies the trade-off for the extended model.
//!
//! Run: `cargo run --release -p rn-bench --bin ablation_iterations`

use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use routenet::{evaluate, train, ExtendedRouteNet};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    // Ablations default to a reduced budget; env knobs still override.
    cfg.train_samples = rn_bench::env_usize("RN_TRAIN_SAMPLES", 96);
    cfg.epochs = rn_bench::env_usize("RN_EPOCHS", 8);

    let (geant2, _) = paper_topologies();
    let gen = cfg.generator();
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let eval_set = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");

    println!("=== E4: extended RouteNet accuracy vs message-passing iterations T ===\n");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>12}",
        "T", "median|rel|", "p90|rel|", "MAE (s)", "train (s)"
    );
    for t in [1usize, 2, 4, 8] {
        let mut model_cfg = cfg.model();
        model_cfg.mp_iterations = t;
        let mut model = ExtendedRouteNet::new(model_cfg);
        let t0 = std::time::Instant::now();
        train(&mut model, &train_set, None, &cfg.training());
        let train_secs = t0.elapsed().as_secs_f64();
        let report = evaluate(&model, &eval_set, "geant2", 10);
        println!(
            "{:>4} {:>14.4} {:>14.4} {:>14.5} {:>12.1}",
            t,
            report.median_abs_rel(),
            report.abs_rel_summary.p90,
            report.mae_s,
            train_secs
        );
    }
    println!("\nExpected shape: accuracy improves sharply from T=1 and saturates near the");
    println!("network diameter; training cost grows linearly in T.");
}
