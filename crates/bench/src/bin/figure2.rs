//! **Figure 2 reproduction** — the paper's headline experiment.
//!
//! Pipeline (matching Section 3 of the paper, scaled down — see
//! EXPERIMENTS.md):
//!
//! 1. Generate GEANT2 training samples and held-out GEANT2 + NSFNET
//!    evaluation samples with the packet-level simulator. Every sample mixes
//!    standard-queue and 1-packet-queue forwarding devices, random routings
//!    and random traffic matrices.
//! 2. Train the **extended** RouteNet (sees queue sizes via node entities)
//!    and the **original** RouteNet (cannot see them) on GEANT2 only.
//! 3. Evaluate per-path delay predictions on (i) extended/GEANT2,
//!    (ii) original/GEANT2, (iii) extended/NSFNET, (iv) original/NSFNET.
//! 4. Print the CDF of the signed relative error for the four curves (the
//!    Figure 2 artifact) plus the E3 summary table.
//!
//! Results are also written to `target/rn-results/figure2_reports.json`.
//!
//! Run: `cargo run --release -p rn-bench --bin figure2`
//! Scale with RN_TRAIN_SAMPLES / RN_EVAL_SAMPLES / RN_EPOCHS / ... (see lib).

use rn_bench::{cached_dataset, paper_topologies, render_cdf_table, ExperimentConfig};
use routenet::{evaluate, train, EvalReport, ExtendedRouteNet, OriginalRouteNet};
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::from_env();
    eprintln!("[figure2] config: {cfg:?}");
    let (geant2, nsfnet) = paper_topologies();
    let gen = cfg.generator();

    // --- Datasets (cached across runs) ------------------------------------
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let eval_geant2 = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");
    let eval_nsfnet = cached_dataset(&nsfnet, &gen, cfg.seed ^ 0xEEE2, cfg.eval_samples, "eval");

    // --- Training on GEANT2 only ------------------------------------------
    let train_cfg = cfg.training();
    let mut extended = ExtendedRouteNet::new(cfg.model());
    let t0 = Instant::now();
    let hist_e = train(&mut extended, &train_set, None, &train_cfg);
    eprintln!(
        "[figure2] extended trained: {:.1}s, final loss {:.5}",
        t0.elapsed().as_secs_f64(),
        hist_e.final_train_loss()
    );
    let mut original = OriginalRouteNet::new(cfg.model());
    let t0 = Instant::now();
    let hist_o = train(&mut original, &train_set, None, &train_cfg);
    eprintln!(
        "[figure2] original trained: {:.1}s, final loss {:.5}",
        t0.elapsed().as_secs_f64(),
        hist_o.final_train_loss()
    );

    // --- Evaluation ---------------------------------------------------------
    let min_packets = 10;
    let reports: Vec<EvalReport> = vec![
        evaluate(&extended, &eval_geant2, "geant2", min_packets),
        evaluate(&original, &eval_geant2, "geant2", min_packets),
        evaluate(&extended, &eval_nsfnet, "nsfnet", min_packets),
        evaluate(&original, &eval_nsfnet, "nsfnet", min_packets),
    ];

    // --- E3: summary table ---------------------------------------------------
    println!("\n=== Figure 2 / E3: delay prediction accuracy (trained on GEANT2 only) ===\n");
    for r in &reports {
        println!("{}", r.summary_line());
    }

    // --- Figure 2: CDF of relative error -------------------------------------
    let xs: Vec<f64> = (-20..=30).map(|i| i as f64 * 0.05).collect();
    let series: Vec<Vec<(f64, f64)>> = reports.iter().map(|r| r.cdf_series_at(&xs)).collect();
    println!("\nCDF of relative error (pred-true)/true — columns are the paper's four curves:\n");
    println!(
        "{}",
        render_cdf_table(
            &[
                "rel_error",
                "ext/geant2",
                "orig/geant2",
                "ext/nsfnet",
                "orig/nsfnet"
            ],
            &xs,
            &series
        )
    );

    // --- Shape checks vs. the paper ------------------------------------------
    println!("=== shape checks against the paper's qualitative claims ===");
    let med = |i: usize| reports[i].median_abs_rel();
    let claim1 = med(0) < med(1);
    let claim2 = med(2) < med(3);
    let claim3 = med(2) < 2.0 * med(0).max(1e-9);
    println!(
        "  [{}] extended beats original on GEANT2 (median |rel|: {:.3} vs {:.3})",
        tick(claim1),
        med(0),
        med(1)
    );
    println!(
        "  [{}] extended beats original on unseen NSFNET (median |rel|: {:.3} vs {:.3})",
        tick(claim2),
        med(2),
        med(3)
    );
    println!(
        "  [{}] extended generalizes to NSFNET (median within 2x of GEANT2: {:.3} vs {:.3})",
        tick(claim3),
        med(2),
        med(0)
    );

    // --- Persist ---------------------------------------------------------------
    std::fs::create_dir_all("target/rn-results").ok();
    let out = std::path::Path::new("target/rn-results/figure2_reports.json");
    if let Err(e) = routenet::persist::save_model(&reports, out) {
        eprintln!("[figure2] warning: could not save reports: {e}");
    } else {
        eprintln!("[figure2] reports saved to {}", out.display());
    }
    let models_out = std::path::Path::new("target/rn-results/figure2_extended_model.json");
    routenet::persist::save_model(&extended, models_out).ok();
    let models_out = std::path::Path::new("target/rn-results/figure2_original_model.json");
    routenet::persist::save_model(&original, models_out).ok();
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
