//! **Figure 1 reproduction** — the paper's Figure 1 is a diagram of the
//! extended message passing: path states updated by `RNN_P` over interleaved
//! node/link sequences, link states by `RNN_L` over aggregated path messages,
//! node states by `RNN_N` over aggregated path messages.
//!
//! A diagram cannot be "measured", so this binary regenerates its *content*
//! machine-checkably: it builds a small example scenario and prints the exact
//! message-passing schedule the implementation executes — every `RNN_P` input
//! in sequence order, and the aggregation targets of every message. Reviewers
//! can diff this against the figure.
//!
//! Run: `cargo run -p rn-bench --bin figure1`

use rn_dataset::{generate_sample, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use routenet::entities::{build_plan, PlanConfig};
use routenet::{FeatureScales, ModelConfig};

fn main() {
    println!("=== Figure 1: extended RouteNet message passing (machine-generated trace) ===\n");

    let topo = topologies::toy5();
    println!(
        "example network: {} ({} nodes, {} directed links)",
        topo.name,
        topo.num_nodes(),
        topo.num_links()
    );
    for (l, link) in topo.links().iter().enumerate() {
        println!("  link {l}: node {} -> node {}", link.src, link.dst);
    }
    println!();

    let gen = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let sample = generate_sample(&topo, &gen, 1, 0);

    let model_config = ModelConfig {
        state_dim: 8,
        ..ModelConfig::default()
    };
    let scales = FeatureScales::unit();
    let normalizer = rn_dataset::Normalizer::identity();
    let plan_config = PlanConfig::new(&model_config, &scales, &normalizer);
    let plan = build_plan(&sample, &plan_config);

    println!("{}", plan.schedule_trace(8));

    println!(
        "per-iteration update order (T = {} iterations):",
        model_config.mp_iterations
    );
    println!("  1. RNN_P sweep: h_p <- GRU(h_p, x) for x in [node, link, node, link, ...]");
    println!("     message m(p, pos) = h_p after consuming position pos");
    println!("  2. RNN_L: h_l <- GRU(h_l, sum over paths p crossing l of m(p, l))");
    println!("  3. RNN_N: h_n <- GRU(h_n, sum over paths p traversing n of m(p, n))");
    println!("readout: delay(p) = MLP(h_p) after the final iteration");
    println!();

    // Quantitative check the schedule is well-formed.
    let node_positions = plan.extended_steps.iter().step_by(2).count();
    let link_positions = plan.extended_steps.iter().skip(1).step_by(2).count();
    println!("schedule invariants:");
    println!(
        "  node positions = link positions = max hop count: {node_positions} = {link_positions}"
    );
    println!(
        "  total path-entity incidences: {} path-node, {} path-link",
        plan.node_incidence_paths.len(),
        plan.node_incidence_paths.len()
    );
    assert_eq!(node_positions, link_positions);
    println!("\nOK: the implemented schedule matches the Figure 1 architecture.");
}
