//! **E9 (beyond paper)** — jitter as the regression target.
//!
//! RouteNet's framing covers "end-to-end network performance metrics such as
//! delay or jitter"; the paper's experiment only reports delay. The
//! architecture is target-agnostic — this binary retrains the extended model
//! on per-path jitter (delay standard deviation) labels and evaluates it the
//! same way, demonstrating the claim.
//!
//! Run: `cargo run --release -p rn-bench --bin target_jitter`

use rayon::prelude::*;
use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use rn_dataset::Normalizer;
use routenet::entities::TargetKind;
use routenet::eval::EvalReport;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.train_samples = rn_bench::env_usize("RN_TRAIN_SAMPLES", 96);
    cfg.epochs = rn_bench::env_usize("RN_EPOCHS", 8);

    let (geant2, _) = paper_topologies();
    let gen = cfg.generator();
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let eval_set = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");

    println!("=== E9: extended RouteNet predicting per-path jitter ===\n");

    // The generic trainer regresses mean delay; jitter training reuses its
    // pieces with jitter plans. Preprocessing must be fitted on jitter.
    let mut model = ExtendedRouteNet::new(ModelConfig { ..cfg.model() });
    model.fit_preprocessing(&train_set, 10);
    // Refit the normalizer on positive jitter labels.
    let jitters: Vec<f64> = train_set
        .samples
        .iter()
        .flat_map(|s| s.targets.iter())
        .filter(|t| t.delivered >= 10 && t.jitter_s > 0.0)
        .map(|t| t.jitter_s)
        .collect();
    assert!(!jitters.is_empty(), "no jitter labels in the training set");
    model.set_normalizer(Normalizer::fit(&jitters, true));

    let plans: Vec<_> = train_set
        .samples
        .par_iter()
        .map(|s| model.plan_for_target(s, TargetKind::Jitter))
        .collect();
    let history = routenet::trainer::train_on_plans(&mut model, &plans, &cfg.training());
    println!("final training loss: {:.5}", history.final_train_loss());

    // Evaluate on held-out jitter labels.
    let eval_plans: Vec<_> = eval_set
        .samples
        .par_iter()
        .map(|s| model.plan_for_target(s, TargetKind::Jitter))
        .collect();
    let pairs = routenet::eval::collect_predictions(&model, &eval_plans);
    let report = EvalReport::from_predictions(
        "extended-jitter",
        "geant2",
        &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
        &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
    );
    println!("{}", report.summary_line());
    println!("\nJitter is intrinsically noisier than mean delay (a second moment from the");
    println!("same packet sample), so expect somewhat higher relative errors than figure2.");
}
