//! Timing probe: measures the cost of the pipeline's building blocks so the
//! default experiment sizes in `ExperimentConfig` stay honest. Not a paper
//! figure — a maintenance tool.
//!
//! Run: `cargo run --release -p rn-bench --bin timing_probe`

use rn_autograd::Graph;
use rn_bench::ExperimentConfig;
use rn_dataset::generate_sample;
use rn_nn::Layer;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, OriginalRouteNet};
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let (geant2, nsfnet) = rn_bench::paper_topologies();
    let gen = cfg.generator();

    // Simulation cost per sample.
    for topo in [&geant2, &nsfnet] {
        let t0 = Instant::now();
        let sample = generate_sample(topo, &gen, 1, 0);
        let dt = t0.elapsed().as_secs_f64();
        let reliable = sample.reliable_fraction(10);
        println!(
            "simulate {:>7}: {:6.2}s/sample, {} paths, reliable(>=10 pkts) {:.1}%",
            topo.name,
            dt,
            sample.num_paths(),
            100.0 * reliable
        );
    }

    // Model forward/backward cost per sample graph.
    let sample = generate_sample(&geant2, &gen, 1, 0);
    let ds = rn_dataset::Dataset {
        topology: geant2.clone(),
        samples: vec![sample],
    };

    let mut ext = ExtendedRouteNet::new(cfg.model());
    ext.fit_preprocessing(&ds, 10);
    let plan = ext.plan(&ds.samples[0]);

    let t0 = Instant::now();
    let reps = 3;
    for _ in 0..reps {
        let _ = ext.predict(&plan);
    }
    println!(
        "extended forward (geant2):  {:6.3}s/graph",
        t0.elapsed().as_secs_f64() / reps as f64
    );

    let t0 = Instant::now();
    for _ in 0..reps {
        let mut g = Graph::new();
        let bound = ext.bind(&mut g);
        let pred = ext.forward(&mut g, &bound, &plan);
        let reliable = g.gather_rows(pred, &plan.reliable_idx);
        let target = g.constant(plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        let _ = ext.grads(&g, &bound);
    }
    println!(
        "extended fwd+bwd (geant2):  {:6.3}s/graph",
        t0.elapsed().as_secs_f64() / reps as f64
    );

    let mut orig = OriginalRouteNet::new(cfg.model());
    orig.fit_preprocessing(&ds, 10);
    let plan_o = orig.plan(&ds.samples[0]);
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut g = Graph::new();
        let bound = orig.bind(&mut g);
        let pred = orig.forward(&mut g, &bound, &plan_o);
        let reliable = g.gather_rows(pred, &plan_o.reliable_idx);
        let target = g.constant(plan_o.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        let _ = orig.grads(&g, &bound);
    }
    println!(
        "original fwd+bwd (geant2):  {:6.3}s/graph",
        t0.elapsed().as_secs_f64() / reps as f64
    );

    // NSFNET eval-side cost.
    let sample_n = generate_sample(&nsfnet, &gen, 2, 0);
    let ds_n = rn_dataset::Dataset {
        topology: nsfnet,
        samples: vec![sample_n],
    };
    let plan_n = ext.plan(&ds_n.samples[0]);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = ext.predict(&plan_n);
    }
    println!(
        "extended forward (nsfnet):  {:6.3}s/graph",
        t0.elapsed().as_secs_f64() / reps as f64
    );
}
