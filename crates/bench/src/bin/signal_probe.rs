//! Diagnostic: (a) what load regime does the experiment traffic model put
//! each topology in, and (b) how strongly do queue sizes influence per-path
//! delay there? If the std/tiny delay ratio is near 1, the dataset cannot
//! separate the extended model from the original. Maintenance tool, not a
//! paper figure.
//!
//! Run: `cargo run --release -p rn-bench --bin signal_probe`

use rn_bench::ExperimentConfig;
use rn_dataset::generate_sample;
use rn_netsim::{simulate, FaultPlan};
use rn_tensor::stats::Summary;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let (geant2, nsfnet) = rn_bench::paper_topologies();
    let gen = cfg.generator();

    for topo in [&geant2, &nsfnet] {
        let mut utils = Vec::new();
        let mut busiest = Vec::new();
        let mut ratios = Vec::new();
        let mut loss_tiny = Vec::new();
        let mut rate_max = 0.0f64;
        for seed in 0..6u64 {
            let sample = generate_sample(topo, &gen, 424_242, seed);
            // Rebuild per-sample topology (capacities may differ per sample).
            let mut sample_topo = topo.clone();
            for (l, &c) in sample.link_capacities.iter().enumerate() {
                sample_topo.set_link_capacity(l, c);
            }
            let loads = sample.traffic.link_loads(&sample_topo, &sample.routing);
            let per_link: Vec<f64> = loads
                .iter()
                .enumerate()
                .map(|(l, &x)| x / sample_topo.link(l).capacity_bps)
                .collect();
            utils.push(per_link.iter().sum::<f64>() / per_link.len() as f64);
            busiest.push(per_link.iter().cloned().fold(0.0, f64::max));
            for (s, d, _) in sample.routing.iter_paths() {
                rate_max = rate_max.max(sample.traffic.rate(s, d));
            }

            // Same scenario, all-standard vs all-tiny queues.
            let mut sim = gen.sim.clone();
            sim.seed = seed;
            let std_caps = vec![32usize; topo.num_nodes()];
            let tiny_caps = vec![1usize; topo.num_nodes()];
            let r_std = simulate(
                &sample_topo,
                &sample.routing,
                &sample.traffic,
                &std_caps,
                &sim,
                &FaultPlan::none(),
            )
            .unwrap();
            let r_tiny = simulate(
                &sample_topo,
                &sample.routing,
                &sample.traffic,
                &tiny_caps,
                &sim,
                &FaultPlan::none(),
            )
            .unwrap();
            for (a, b) in r_std.flows.iter().zip(&r_tiny.flows) {
                if a.delivered >= 20 && b.delivered >= 20 && b.mean_delay_s > 0.0 {
                    ratios.push(a.mean_delay_s / b.mean_delay_s);
                    loss_tiny.push(b.loss_ratio);
                }
            }
        }
        let u = Summary::of(&utils);
        let b = Summary::of(&busiest);
        let r = Summary::of(&ratios);
        let l = Summary::of(&loss_tiny);
        println!(
            "{:>7}: mean-util med {:.2} | busiest-link med {:.2} max {:.2} | max pair rate {:.0} bps",
            topo.name, u.median, b.median, b.max, rate_max
        );
        println!(
            "         delay ratio std/tiny med {:.3} p90 {:.3} | tiny loss med {:.3}",
            r.median, r.p90, l.median
        );
    }
}
