//! **Giant-topology scaling harness** — train small, evaluate large.
//!
//! The generalization claim of the paper (train on one topology, predict on
//! another) is exercised here at ISP scale: the model trains on GEANT2
//! (24 nodes) with streaming composition, then predicts per-path delays on
//! generated tiered ISP topologies of 100/250/500+ nodes it has never seen.
//! Giant scenarios use **sparse** traffic (`generate_sparse`): a fixed
//! number of active source/destination pairs regardless of node count, so
//! label count stays constant across sizes and the per-path cost column
//! isolates the cost of topology growth.
//!
//! For every evaluation size the harness records accuracy (median |relative
//! error|), wall-clock cost per labelled path and the process peak RSS
//! (`VmHWM` from `/proc/self/status`), writing everything to
//! `BENCH_scaling.json` in `BENCH_OUT_DIR` (default: workspace root).
//!
//! Run: `cargo run --release -p rn_bench --bin scaling`
//!
//! Knobs (on top of the shared `RN_TRAIN_SAMPLES` / `RN_EPOCHS` / ... set):
//!
//! | env | default | meaning |
//! |-----|---------|---------|
//! | `RN_SCALING_SIZES` | `100,250,500` | comma-separated eval topology sizes |
//! | `RN_SCALING_PAIRS` | `256` | active traffic pairs per giant sample |
//! | `RN_SCALING_EVAL_SAMPLES` | `3` | samples per eval size |
//! | `RN_SCALING_MAX_RSS_MB` | unset | exit non-zero if peak RSS exceeds this |
//!
//! Streaming composition (`RN_STREAM_COMPOSE`) is forced on for the training
//! run — this binary is the end-to-end proof that the memory-bounded path
//! trains real models. Set `RN_INTRA_SHARDS` to fan out the dense phases of
//! the giant single-sample compositions across cores.

use rn_bench::{cached_dataset, env_f64, env_usize, ExperimentConfig};
use rn_netgraph::generators::{isp_tiered, TierConfig};
use rn_netgraph::topologies;
use rn_tensor::Prng;
use routenet::{evaluate, train, EvalReport, ExtendedRouteNet};
use serde::Serialize;
use std::time::Instant;

/// One evaluation topology size.
#[derive(Serialize)]
struct ScalingRow {
    /// Nodes in the evaluation topology.
    nodes: usize,
    /// Links in the evaluation topology.
    links: usize,
    /// Active traffic pairs per sample (labelled paths per sample).
    active_pairs: usize,
    /// Evaluation samples at this size.
    eval_samples: usize,
    /// Reliable labelled paths across all samples.
    reliable_paths: usize,
    /// Median |(pred − true)/true| over reliable paths.
    median_abs_rel: f64,
    /// Mean absolute error (seconds).
    mae_s: f64,
    /// Wall-clock to simulate the evaluation samples (seconds).
    generate_s: f64,
    /// Wall-clock to plan + predict all samples (seconds).
    eval_s: f64,
    /// Inference cost per labelled path (microseconds).
    eval_us_per_path: f64,
    /// Process peak RSS after this size finished (MB, 0 if unreadable).
    peak_rss_mb: f64,
}

/// The whole `BENCH_scaling.json` artifact.
#[derive(Serialize)]
struct ScalingReport {
    /// Topology the model was trained on.
    train_topology: String,
    /// Its node count — the "small" in train-small/eval-large.
    train_nodes: usize,
    /// Training samples.
    train_samples: usize,
    /// Training epochs.
    epochs: usize,
    /// Whether composition streamed (always true here).
    stream_compose: bool,
    /// Training wall-clock (seconds).
    train_s: f64,
    /// Final epoch mean training loss.
    final_train_loss: f64,
    /// Peak RSS right after training (MB).
    peak_rss_after_train_mb: f64,
    /// RSS budget from `RN_SCALING_MAX_RSS_MB` (0 = unset).
    max_rss_budget_mb: f64,
    /// Whether the final peak RSS stayed within the budget (true if unset).
    rss_within_budget: bool,
    /// One row per evaluation size, training topology first.
    rows: Vec<ScalingRow>,
}

/// Process peak resident set size in MB, from `VmHWM` in
/// `/proc/self/status`. Returns 0.0 where procfs is unavailable (the JSON
/// stays well-formed; the CI assert only runs on Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Parse `RN_SCALING_SIZES` ("100,250,500") into sorted sizes.
fn scaling_sizes() -> Vec<usize> {
    let raw = std::env::var("RN_SCALING_SIZES").unwrap_or_else(|_| "100,250,500".into());
    let mut sizes: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 8)
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    assert!(
        !sizes.is_empty(),
        "RN_SCALING_SIZES parsed to nothing: {raw}"
    );
    sizes
}

fn row_from_report(
    report: &EvalReport,
    nodes: usize,
    links: usize,
    active_pairs: usize,
    eval_samples: usize,
    generate_s: f64,
    eval_s: f64,
) -> ScalingRow {
    let paths = report.num_paths();
    ScalingRow {
        nodes,
        links,
        active_pairs,
        eval_samples,
        reliable_paths: paths,
        median_abs_rel: report.median_abs_rel(),
        mae_s: report.mae_s,
        generate_s,
        eval_s,
        eval_us_per_path: if paths > 0 {
            eval_s * 1e6 / paths as f64
        } else {
            0.0
        },
        peak_rss_mb: peak_rss_mb(),
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let sizes = scaling_sizes();
    let pairs = env_usize("RN_SCALING_PAIRS", 256);
    let eval_samples = env_usize("RN_SCALING_EVAL_SAMPLES", 3);
    let rss_budget_mb = env_f64("RN_SCALING_MAX_RSS_MB", 0.0);
    eprintln!("[scaling] config: {cfg:?}, sizes {sizes:?}, pairs {pairs}");

    let gen = cfg.generator();
    let min_packets = 10;

    // --- Train small: GEANT2, streaming composition ------------------------
    let geant2 = topologies::geant2_default();
    let train_set = cached_dataset(&geant2, &gen, cfg.seed, cfg.train_samples, "train");
    let mut train_cfg = cfg.training();
    train_cfg.stream_compose = true;
    let mut model = ExtendedRouteNet::new(cfg.model());
    let t0 = Instant::now();
    let hist = train(&mut model, &train_set, None, &train_cfg);
    let train_s = t0.elapsed().as_secs_f64();
    let peak_rss_after_train_mb = peak_rss_mb();
    eprintln!(
        "[scaling] trained on {} ({} nodes): {train_s:.1}s, final loss {:.5}, peak RSS {:.0} MB",
        geant2.name,
        geant2.num_nodes(),
        hist.final_train_loss(),
        peak_rss_after_train_mb,
    );

    // --- Evaluate: training distribution first, then the giants ------------
    let mut rows = Vec::new();
    let held_out = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");
    let t0 = Instant::now();
    let report = evaluate(&model, &held_out, "geant2", min_packets);
    rows.push(row_from_report(
        &report,
        geant2.num_nodes(),
        geant2.num_links(),
        geant2.num_nodes() * (geant2.num_nodes() - 1),
        cfg.eval_samples,
        0.0,
        t0.elapsed().as_secs_f64(),
    ));
    eprintln!("[scaling] {}", report.summary_line());

    // Uniform tier capacities keep the link-capacity feature inside the
    // training distribution: this harness isolates *scale* generalization,
    // not capacity extrapolation.
    let tier = TierConfig {
        core_capacity_bps: 1e4,
        aggregation_capacity_bps: 1e4,
        edge_capacity_bps: 1e4,
        ..TierConfig::default()
    };
    for &n in &sizes {
        let mut rng = Prng::new(cfg.seed ^ (n as u64).rotate_left(17));
        let topo = isp_tiered(n, &tier, &mut rng)
            .unwrap_or_else(|e| panic!("isp_tiered({n}) failed: {e}"));
        let t_gen = Instant::now();
        let ds = rn_dataset::generate_sparse(&topo, &gen, pairs, cfg.seed ^ 0xBEEF, eval_samples);
        let generate_s = t_gen.elapsed().as_secs_f64();
        let t_eval = Instant::now();
        let report = evaluate(&model, &ds, &format!("isp-{n}"), min_packets);
        let eval_s = t_eval.elapsed().as_secs_f64();
        let row = row_from_report(
            &report,
            topo.num_nodes(),
            topo.num_links(),
            pairs,
            eval_samples,
            generate_s,
            eval_s,
        );
        eprintln!(
            "[scaling] {} — {:.1} us/path, peak RSS {:.0} MB",
            report.summary_line(),
            row.eval_us_per_path,
            row.peak_rss_mb,
        );
        rows.push(row);
    }

    let final_rss = peak_rss_mb();
    let rss_within_budget = rss_budget_mb <= 0.0 || final_rss <= rss_budget_mb;
    let out = ScalingReport {
        train_topology: geant2.name.clone(),
        train_nodes: geant2.num_nodes(),
        train_samples: cfg.train_samples,
        epochs: cfg.epochs,
        stream_compose: true,
        train_s,
        final_train_loss: hist.final_train_loss(),
        peak_rss_after_train_mb,
        max_rss_budget_mb: rss_budget_mb,
        rss_within_budget,
        rows,
    };

    let out_dir = std::env::var("BENCH_OUT_DIR")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let path = std::path::Path::new(&out_dir).join("BENCH_scaling.json");
    std::fs::write(&path, serde_json::to_string(&out).expect("serialize"))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[scaling] wrote {}", path.display());

    if !rss_within_budget {
        eprintln!(
            "[scaling] FAIL: peak RSS {final_rss:.0} MB exceeds budget {rss_budget_mb:.0} MB"
        );
        std::process::exit(1);
    }
}
