//! **E8 (beyond paper)** — sample efficiency.
//!
//! The paper trains on 400k samples; this reproduction uses orders of
//! magnitude fewer. This sweep makes the scaling explicit: accuracy of the
//! extended model as a function of the training-set size, with everything
//! else fixed. The curve justifies why the Figure-2 conclusion survives the
//! scale-down (the extended/original gap opens long before the accuracy
//! saturates).
//!
//! Run: `cargo run --release -p rn-bench --bin sample_efficiency`

use rn_bench::{cached_dataset, paper_topologies, ExperimentConfig};
use rn_dataset::Dataset;
use routenet::{evaluate, train, ExtendedRouteNet, OriginalRouteNet};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    let max_train = rn_bench::env_usize("RN_TRAIN_SAMPLES", 128);
    cfg.train_samples = max_train;
    cfg.epochs = rn_bench::env_usize("RN_EPOCHS", 8);

    let (geant2, _) = paper_topologies();
    let gen = cfg.generator();
    let full_train = cached_dataset(&geant2, &gen, cfg.seed, max_train, "train");
    let eval_set = cached_dataset(&geant2, &gen, cfg.seed ^ 0xEEE1, cfg.eval_samples, "eval");

    println!("=== E8: accuracy vs training-set size (GEANT2) ===\n");
    println!(
        "{:>8} {:>18} {:>18} {:>12}",
        "samples", "ext median|rel|", "orig median|rel|", "gap (x)"
    );
    let mut size = 16usize;
    while size <= max_train {
        let subset = Dataset {
            topology: full_train.topology.clone(),
            samples: full_train.samples[..size].to_vec(),
        };
        let mut ext = ExtendedRouteNet::new(cfg.model());
        train(&mut ext, &subset, None, &cfg.training());
        let re = evaluate(&ext, &eval_set, "geant2", 10);

        let mut orig = OriginalRouteNet::new(cfg.model());
        train(&mut orig, &subset, None, &cfg.training());
        let ro = evaluate(&orig, &eval_set, "geant2", 10);

        let gap = ro.median_abs_rel() / re.median_abs_rel().max(1e-9);
        println!(
            "{:>8} {:>18.4} {:>18.4} {:>12.2}",
            size,
            re.median_abs_rel(),
            ro.median_abs_rel(),
            gap
        );
        size *= 2;
    }
    println!("\nExpected shape: the extended model's error falls with more data while the");
    println!("original plateaus at the queue-size noise floor, so the gap widens.");
}
