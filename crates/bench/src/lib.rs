//! # rn-bench
//!
//! The experiment harness: shared infrastructure for the binaries that
//! regenerate every figure of the paper (and the ablations beyond it), plus
//! Criterion micro-benchmarks of the substrate.
//!
//! ## Binaries
//!
//! | binary | artifact |
//! |--------|----------|
//! | `figure1` | machine-generated trace of the extended message-passing schedule (paper Figure 1) |
//! | `figure2` | CDF of delay relative error, 4 curves: {extended, original} × {GEANT2, NSFNET}, trained on GEANT2 only (paper Figure 2) + summary table (E3) |
//! | `ablation_iterations` | accuracy vs. message-passing iterations T (E4) |
//! | `ablation_node_update` | positional messages vs. final-path-state sum (E5) |
//! | `baseline_qtheory` | M/M/1/K analytical baseline vs. both RouteNets (E6) |
//! | `ablation_hidden_dim` | accuracy vs. state dimensionality (E7) |
//! | `sample_efficiency` | accuracy vs. training-set size (E8) |
//!
//! ## Scaling knobs
//!
//! The paper trains on 400k samples; the defaults here are sized for a
//! laptop-minutes run. Override with environment variables:
//! `RN_TRAIN_SAMPLES`, `RN_EVAL_SAMPLES`, `RN_EPOCHS`, `RN_STATE_DIM`,
//! `RN_MP_ITERS`, `RN_SIM_DURATION_S`, `RN_SEED`. `RN_CACHE_DIR` controls
//! where generated datasets are cached (default `target/rn-dataset-cache`).

use rn_dataset::{generate, Dataset, GeneratorConfig, TrafficModel};
use rn_netgraph::{topologies, Topology};
use rn_netsim::SimConfig;
use routenet::{ModelConfig, TrainConfig};
use std::path::PathBuf;

/// Read a `usize` experiment knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an `f64` experiment knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a `u64` experiment knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The shared experiment configuration, resolved from env + defaults.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Training samples (GEANT2).
    pub train_samples: usize,
    /// Evaluation samples per topology.
    pub eval_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Entity state width.
    pub state_dim: usize,
    /// Message-passing iterations.
    pub mp_iterations: usize,
    /// Simulated horizon per sample (seconds).
    pub sim_duration_s: f64,
    /// Master seed for datasets and weights.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Resolve from environment variables, falling back to defaults sized for
    /// a small CPU box (~minutes per figure).
    pub fn from_env() -> Self {
        Self {
            train_samples: env_usize("RN_TRAIN_SAMPLES", 320),
            eval_samples: env_usize("RN_EVAL_SAMPLES", 48),
            epochs: env_usize("RN_EPOCHS", 16),
            state_dim: env_usize("RN_STATE_DIM", 16),
            mp_iterations: env_usize("RN_MP_ITERS", 4),
            sim_duration_s: env_f64("RN_SIM_DURATION_S", 1_200.0),
            seed: env_u64("RN_SEED", 2019),
        }
    }

    /// The generator configuration used by every experiment.
    ///
    /// Traffic uses [`TrafficModel::AbsoluteRates`]: per-pair rates come from
    /// one absolute range regardless of topology (the KDN-dataset approach),
    /// so a model trained on GEANT2 sees in-distribution rate features on
    /// NSFNET — the precondition of the paper's generalization experiment.
    /// The intensity range is tuned so GEANT2 samples span moderate-to-
    /// overloaded regimes where queue size matters (see `signal_probe`).
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            sim: SimConfig {
                duration_s: self.sim_duration_s,
                warmup_s: self.sim_duration_s * 0.1,
                ..SimConfig::default()
            },
            // The wide intensity range makes the *union* of load regimes
            // overlap across topologies: GEANT2 (≈24 flows/link) is loaded
            // already at low intensity, NSFNET (≈10 flows/link) needs the
            // upper half of the range to develop queueing. Both draw from
            // the same distribution, so no feature is out-of-distribution.
            traffic_model: TrafficModel::AbsoluteRates {
                rate_range_bps: (env_f64("RN_RATE_LO", 50.0), env_f64("RN_RATE_HI", 500.0)),
                intensity_range: (
                    env_f64("RN_INTENSITY_LO", 0.4),
                    env_f64("RN_INTENSITY_HI", 3.0),
                ),
            },
            ..GeneratorConfig::default()
        }
    }

    /// Model configuration derived from the experiment knobs.
    pub fn model(&self) -> ModelConfig {
        ModelConfig {
            state_dim: self.state_dim,
            mp_iterations: self.mp_iterations,
            readout_hidden: 2 * self.state_dim,
            seed: self.seed,
            ..ModelConfig::default()
        }
    }

    /// Training configuration derived from the experiment knobs.
    pub fn training(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: self.seed,
            verbose: true,
            // Step-decay in the last third stabilizes the fine-grained
            // queue-size corrections the extended model learns late.
            lr_halve_epochs: vec![(self.epochs * 2) / 3],
            ..TrainConfig::default()
        }
    }
}

/// Where cached datasets live.
pub fn cache_dir() -> PathBuf {
    std::env::var("RN_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/rn-dataset-cache"))
}

/// Generate (or load from cache) a dataset for a canonical topology.
///
/// The cache key includes topology, sample count, simulation horizon and
/// seed, so changing any knob regenerates. `label` distinguishes train/eval
/// streams drawn from different master seeds.
pub fn cached_dataset(
    topo: &Topology,
    config: &GeneratorConfig,
    master_seed: u64,
    count: usize,
    label: &str,
) -> Dataset {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).ok();
    let key = format!(
        "{}_{label}_{count}x{}s_seed{master_seed}.jsonl",
        topo.name, config.sim.duration_s as u64
    );
    let path = dir.join(key);
    if path.exists() {
        match rn_dataset::io::load_jsonl(&path) {
            Ok(ds) if ds.len() == count => {
                eprintln!("[data] loaded {} samples from {}", ds.len(), path.display());
                return ds;
            }
            _ => eprintln!("[data] cache at {} is stale, regenerating", path.display()),
        }
    }
    eprintln!("[data] generating {count} samples on {} ...", topo.name);
    let t0 = std::time::Instant::now();
    let ds = generate(topo, config, master_seed, count);
    eprintln!("[data] generated in {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = rn_dataset::io::save_jsonl(&ds, &path) {
        eprintln!("[data] warning: failed to cache dataset: {e}");
    }
    ds
}

/// The two topologies of the paper's evaluation.
pub fn paper_topologies() -> (Topology, Topology) {
    (topologies::geant2_default(), topologies::nsfnet_default())
}

/// Render an `(x, F(x))` CDF series as an aligned text table, one row per x.
pub fn render_cdf_table(header: &[&str], xs: &[f64], series: &[Vec<(f64, f64)>]) -> String {
    assert_eq!(
        header.len(),
        series.len() + 1,
        "one header per series plus the x column"
    );
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| format!("{h:>22}"))
            .collect::<Vec<_>>()
            .join(""),
    );
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>22.3}"));
        for s in series {
            out.push_str(&format!("{:>22.4}", s[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_falls_back() {
        std::env::remove_var("RN_TEST_KNOB_X");
        assert_eq!(env_usize("RN_TEST_KNOB_X", 7), 7);
        std::env::set_var("RN_TEST_KNOB_X", "13");
        assert_eq!(env_usize("RN_TEST_KNOB_X", 7), 13);
        std::env::set_var("RN_TEST_KNOB_X", "not a number");
        assert_eq!(env_usize("RN_TEST_KNOB_X", 7), 7);
        std::env::remove_var("RN_TEST_KNOB_X");
    }

    #[test]
    fn experiment_config_is_consistent() {
        let c = ExperimentConfig::from_env();
        c.generator().validate().unwrap();
        c.model().validate().unwrap();
        assert!(c.training().epochs > 0);
    }

    #[test]
    fn cdf_table_renders_all_series() {
        let xs = vec![-0.5, 0.0, 0.5];
        let mk = |off: f64| {
            xs.iter()
                .map(|&x| (x, (x + off).clamp(0.0, 1.0)))
                .collect::<Vec<_>>()
        };
        let table = render_cdf_table(&["relerr", "a", "b"], &xs, &[mk(0.5), mk(0.6)]);
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("relerr"));
    }
}
