//! Fault injection, in the spirit of smoltcp's `--drop-chance`-style knobs.
//!
//! Faults let tests and robustness experiments exercise the simulator (and the
//! models trained on its output) under adverse conditions:
//!
//! - random per-hop packet corruption/drop with probability `drop_chance`;
//! - scheduled link outages: packets offered to a downed link are dropped.

use serde::{Deserialize, Serialize};

/// A scheduled outage of one directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// The directed link that goes down.
    pub link: usize,
    /// Outage start (simulated seconds).
    pub start_s: f64,
    /// Outage end (simulated seconds, exclusive).
    pub end_s: f64,
}

/// A fault-injection plan for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any individual hop transmission is lost (models link
    /// corruption). `0.0` disables.
    pub drop_chance: f64,
    /// Scheduled link outages.
    pub outages: Vec<LinkOutage>,
}

impl FaultPlan {
    /// A plan with no faults (the default for dataset generation).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with uniform random hop loss.
    pub fn with_drop_chance(drop_chance: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_chance),
            "drop chance must be a probability"
        );
        Self {
            drop_chance,
            outages: Vec::new(),
        }
    }

    /// Add a scheduled outage.
    pub fn with_outage(mut self, link: usize, start_s: f64, end_s: f64) -> Self {
        assert!(
            start_s >= 0.0 && end_s > start_s,
            "invalid outage window [{start_s}, {end_s})"
        );
        self.outages.push(LinkOutage {
            link,
            start_s,
            end_s,
        });
        self
    }

    /// True when `link` is down at time `t`.
    pub fn link_down(&self, link: usize, t: f64) -> bool {
        self.outages
            .iter()
            .any(|o| o.link == link && t >= o.start_s && t < o.end_s)
    }

    /// True when the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0 && self.outages.is_empty()
    }

    /// Structural validation against a topology with `num_links` directed
    /// links — used now that fault plans are a first-class, persisted
    /// scenario dimension rather than a test-only knob.
    pub fn validate(&self, num_links: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.drop_chance) {
            return Err(format!(
                "drop chance {} is not a probability",
                self.drop_chance
            ));
        }
        for o in &self.outages {
            if o.link >= num_links {
                return Err(format!("outage on link {} of {num_links}", o.link));
            }
            if !(o.start_s >= 0.0 && o.end_s > o.start_s) {
                return Err(format!(
                    "invalid outage window [{}, {}) on link {}",
                    o.start_s, o.end_s, o.link
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.link_down(0, 5.0));
    }

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::none().with_outage(3, 10.0, 20.0);
        assert!(!plan.link_down(3, 9.99));
        assert!(plan.link_down(3, 10.0));
        assert!(plan.link_down(3, 19.99));
        assert!(!plan.link_down(3, 20.0));
        assert!(!plan.link_down(4, 15.0), "other links unaffected");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_drop_chance() {
        let _ = FaultPlan::with_drop_chance(1.5);
    }
}
