//! The event calendar: a deterministic future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of scheduled events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A flow emits its next packet.
    FlowArrival {
        /// Index into the simulation's flow table.
        flow: usize,
    },
    /// The output port of `link` finishes transmitting its in-service packet.
    Departure {
        /// The directed link whose port completes service.
        link: usize,
    },
    /// A packet previously launched on `link` arrives at the receiving node
    /// after propagation (only scheduled when the link has a positive
    /// propagation delay).
    HopArrival {
        /// The directed link the packet traveled on.
        link: usize,
        /// Index into the in-flight packet store.
        packet: usize,
    },
}

/// A scheduled event. Ordering is `(time, seq)`: `seq` is a global insertion
/// counter that makes simultaneous events fire in schedule order, keeping runs
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Simulated time at which the event fires.
    pub time: f64,
    /// Global insertion sequence number (tie-breaker).
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`. Panics on non-finite or negative times —
    /// those are always engine bugs.
    pub fn schedule(&mut self, time: f64, kind: EventKind) {
        assert!(
            time.is_finite() && time >= 0.0,
            "schedule: bad event time {time}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, EventKind::FlowArrival { flow: 0 });
        q.schedule(1.0, EventKind::FlowArrival { flow: 1 });
        q.schedule(2.0, EventKind::FlowArrival { flow: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::FlowArrival { flow: 10 });
        q.schedule(5.0, EventKind::FlowArrival { flow: 20 });
        q.schedule(5.0, EventKind::FlowArrival { flow: 30 });
        let flows: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::FlowArrival { flow } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, vec![10, 20, 30]);
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, EventKind::Departure { link: 0 });
        q.schedule(2.0, EventKind::Departure { link: 1 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_time() {
        EventQueue::new().schedule(f64::NAN, EventKind::Departure { link: 0 });
    }
}
