//! Simulation configuration and per-node queue profiles.

use rn_tensor::Prng;
use serde::{Deserialize, Serialize};

/// The queue capacity archetypes of the paper's evaluation: forwarding devices
/// have queues "either of standard size or only with support for 1 packet".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueProfile {
    /// Standard buffer (32 waiting packets by default).
    Standard,
    /// Tiny buffer: a single waiting packet.
    Tiny,
}

impl QueueProfile {
    /// Waiting-packet capacity of this profile under `config`.
    pub fn capacity(self, config: &SimConfig) -> usize {
        match self {
            QueueProfile::Standard => config.standard_queue_pkts,
            QueueProfile::Tiny => 1,
        }
    }

    /// Draw a per-node profile vector: each node independently `Tiny` with
    /// probability `tiny_fraction`, else `Standard`.
    pub fn random_assignment(
        num_nodes: usize,
        tiny_fraction: f64,
        rng: &mut Prng,
    ) -> Vec<QueueProfile> {
        (0..num_nodes)
            .map(|_| {
                if rng.bernoulli(tiny_fraction) {
                    QueueProfile::Tiny
                } else {
                    QueueProfile::Standard
                }
            })
            .collect()
    }

    /// Convert a profile vector into waiting-packet capacities.
    pub fn capacities(profiles: &[QueueProfile], config: &SimConfig) -> Vec<usize> {
        profiles.iter().map(|p| p.capacity(config)).collect()
    }
}

/// Global simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated horizon in seconds (includes warmup).
    pub duration_s: f64,
    /// Deliveries before this time are excluded from the metrics, letting
    /// queues reach steady state first.
    pub warmup_s: f64,
    /// Mean packet size in bits (sizes are exponential with this mean).
    pub mean_packet_bits: f64,
    /// Upper cap on packet size in bits (exponential tail truncated here).
    pub max_packet_bits: f64,
    /// Waiting-packet capacity of a [`QueueProfile::Standard`] queue.
    pub standard_queue_pkts: usize,
    /// RNG seed; fully determines the simulation given the other inputs.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            duration_s: 1_000.0,
            warmup_s: 100.0,
            mean_packet_bits: 1_000.0,
            max_packet_bits: 8_000.0,
            standard_queue_pkts: 32,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// Validate invariants; called by the engine before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_s <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.warmup_s < 0.0 || self.warmup_s >= self.duration_s {
            return Err(format!(
                "warmup ({}) must be in [0, duration {})",
                self.warmup_s, self.duration_s
            ));
        }
        if self.mean_packet_bits <= 0.0 {
            return Err("mean packet size must be positive".into());
        }
        if self.max_packet_bits < self.mean_packet_bits {
            return Err("max packet size must be at least the mean".into());
        }
        if self.standard_queue_pkts == 0 {
            return Err("standard queue must hold at least one packet".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let c = SimConfig {
            duration_s: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let base = SimConfig::default();
        let c = SimConfig {
            warmup_s: base.duration_s,
            ..base
        };
        assert!(c.validate().is_err());

        let base = SimConfig::default();
        let c = SimConfig {
            max_packet_bits: base.mean_packet_bits / 2.0,
            ..base
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            standard_queue_pkts: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn profile_capacities() {
        let config = SimConfig::default();
        assert_eq!(QueueProfile::Standard.capacity(&config), 32);
        assert_eq!(QueueProfile::Tiny.capacity(&config), 1);
        let caps = QueueProfile::capacities(&[QueueProfile::Tiny, QueueProfile::Standard], &config);
        assert_eq!(caps, vec![1, 32]);
    }

    #[test]
    fn random_assignment_extremes() {
        let mut rng = Prng::new(1);
        let all_std = QueueProfile::random_assignment(20, 0.0, &mut rng);
        assert!(all_std.iter().all(|&p| p == QueueProfile::Standard));
        let all_tiny = QueueProfile::random_assignment(20, 1.0, &mut rng);
        assert!(all_tiny.iter().all(|&p| p == QueueProfile::Tiny));
    }

    #[test]
    fn random_assignment_mixes() {
        let mut rng = Prng::new(2);
        let profiles = QueueProfile::random_assignment(200, 0.5, &mut rng);
        let tiny = profiles
            .iter()
            .filter(|&&p| p == QueueProfile::Tiny)
            .count();
        assert!((60..140).contains(&tiny), "tiny count {tiny} far from half");
    }
}
