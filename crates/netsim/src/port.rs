//! Output ports: one single-server finite FIFO queue per directed link.

use std::collections::VecDeque;

/// A packet traversing the network.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Index into the simulation's flow table.
    pub flow: usize,
    /// Size in bits.
    pub size_bits: f64,
    /// Simulated creation time (entry into the first output queue).
    pub created_at: f64,
    /// Next index into the flow's link path (0 = first hop about to be
    /// crossed). Incremented as the packet is launched on each hop.
    pub hop: usize,
}

/// The transmission side of one directed link: a single server with a finite
/// drop-tail FIFO of waiting packets. Capacity counts *waiting* packets only;
/// the in-service packet occupies the server, not a queue slot.
#[derive(Debug)]
pub struct OutputPort {
    /// Waiting room.
    queue: VecDeque<Packet>,
    /// Packet currently being transmitted, if any.
    in_service: Option<Packet>,
    /// Max waiting packets.
    capacity: usize,
    /// Packets dropped at this port (queue full).
    pub drops: u64,
    /// Total bits whose transmission *completed* (for utilization stats).
    /// Counting at completion — not at service start — keeps
    /// `bits_sent / (capacity * horizon)` bounded by 1 even when the run
    /// ends mid-transmission.
    pub bits_sent: f64,
}

/// Outcome of offering a packet to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The port was idle; the packet went straight into service and a
    /// departure must be scheduled.
    StartService,
    /// The packet joined the waiting queue.
    Queued,
    /// The queue was full; the packet was dropped.
    Dropped,
}

impl OutputPort {
    /// A port with room for `capacity` waiting packets.
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            in_service: None,
            capacity,
            drops: 0,
            bits_sent: 0.0,
        }
    }

    /// Offer a packet to the port, applying drop-tail admission.
    pub fn offer(&mut self, pkt: Packet) -> Offer {
        if self.in_service.is_none() {
            debug_assert!(self.queue.is_empty(), "idle server with a non-empty queue");
            self.in_service = Some(pkt);
            Offer::StartService
        } else if self.queue.len() < self.capacity {
            self.queue.push_back(pkt);
            Offer::Queued
        } else {
            self.drops += 1;
            Offer::Dropped
        }
    }

    /// Complete the in-service transmission: returns the departed packet and,
    /// if another packet was waiting, the packet now entering service (whose
    /// departure the engine must schedule).
    pub fn complete_service(&mut self) -> (Packet, Option<Packet>) {
        let departed = self
            .in_service
            .take()
            .expect("complete_service on idle port");
        self.bits_sent += departed.size_bits;
        if let Some(pkt) = self.queue.pop_front() {
            self.in_service = Some(pkt);
        }
        (departed, self.in_service)
    }

    /// Number of waiting packets (excludes the in-service packet).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// True when a packet is in transmission.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Packets currently held by the port (waiting + in service).
    pub fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize) -> Packet {
        Packet {
            flow,
            size_bits: 1000.0,
            created_at: 0.0,
            hop: 0,
        }
    }

    #[test]
    fn idle_port_starts_service_immediately() {
        let mut port = OutputPort::new(2);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert!(port.busy());
        assert_eq!(port.backlog(), 0);
    }

    #[test]
    fn busy_port_queues_up_to_capacity_then_drops() {
        let mut port = OutputPort::new(2);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert_eq!(port.offer(pkt(1)), Offer::Queued);
        assert_eq!(port.offer(pkt(2)), Offer::Queued);
        assert_eq!(port.offer(pkt(3)), Offer::Dropped);
        assert_eq!(port.drops, 1);
        assert_eq!(port.occupancy(), 3);
    }

    #[test]
    fn tiny_queue_holds_one_waiting_packet() {
        let mut port = OutputPort::new(1);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert_eq!(port.offer(pkt(1)), Offer::Queued);
        assert_eq!(port.offer(pkt(2)), Offer::Dropped);
    }

    #[test]
    fn completion_promotes_fifo_order() {
        let mut port = OutputPort::new(4);
        port.offer(pkt(0));
        port.offer(pkt(1));
        port.offer(pkt(2));
        let (out0, next) = port.complete_service();
        assert_eq!(out0.flow, 0);
        assert_eq!(next.unwrap().flow, 1, "FIFO: flow 1 enters service next");
        let (out1, next) = port.complete_service();
        assert_eq!(out1.flow, 1);
        assert_eq!(next.unwrap().flow, 2);
        let (out2, next) = port.complete_service();
        assert_eq!(out2.flow, 2);
        assert!(next.is_none());
        assert!(!port.busy());
    }

    #[test]
    fn bits_sent_counts_completed_transmissions_only() {
        let mut port = OutputPort::new(0); // no waiting room at all
        port.offer(pkt(0));
        port.offer(pkt(1)); // dropped
        assert_eq!(port.bits_sent, 0.0, "in-flight bits are not counted yet");
        assert_eq!(port.drops, 1);
        port.complete_service();
        assert_eq!(port.bits_sent, 1000.0);
    }

    #[test]
    #[should_panic(expected = "complete_service on idle port")]
    fn completing_idle_port_is_a_bug() {
        OutputPort::new(1).complete_service();
    }
}
