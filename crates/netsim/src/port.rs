//! Output ports: the single-server FIFO queue of the legacy model
//! ([`OutputPort`]) and the multi-queue scheduled port QoS scenarios use
//! ([`SchedPort`]).

use crate::qos::SchedulingPolicy;
use std::collections::VecDeque;

/// A packet traversing the network.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Index into the simulation's flow table.
    pub flow: usize,
    /// ToS class (0 = highest priority; always 0 in the legacy FIFO model).
    pub class: u8,
    /// Size in bits.
    pub size_bits: f64,
    /// Simulated creation time (entry into the first output queue).
    pub created_at: f64,
    /// Next index into the flow's link path (0 = first hop about to be
    /// crossed). Incremented as the packet is launched on each hop.
    pub hop: usize,
}

/// The transmission side of one directed link: a single server with a finite
/// drop-tail FIFO of waiting packets. Capacity counts *waiting* packets only;
/// the in-service packet occupies the server, not a queue slot.
#[derive(Debug)]
pub struct OutputPort {
    /// Waiting room.
    queue: VecDeque<Packet>,
    /// Packet currently being transmitted, if any.
    in_service: Option<Packet>,
    /// Max waiting packets.
    capacity: usize,
    /// Packets dropped at this port (queue full).
    pub drops: u64,
    /// Total bits whose transmission *completed* (for utilization stats).
    /// Counting at completion — not at service start — keeps
    /// `bits_sent / (capacity * horizon)` bounded by 1 even when the run
    /// ends mid-transmission.
    pub bits_sent: f64,
}

/// Outcome of offering a packet to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The port was idle; the packet went straight into service and a
    /// departure must be scheduled.
    StartService,
    /// The packet joined the waiting queue.
    Queued,
    /// The queue was full; the packet was dropped.
    Dropped,
}

impl OutputPort {
    /// A port with room for `capacity` waiting packets.
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            in_service: None,
            capacity,
            drops: 0,
            bits_sent: 0.0,
        }
    }

    /// Offer a packet to the port, applying drop-tail admission.
    pub fn offer(&mut self, pkt: Packet) -> Offer {
        if self.in_service.is_none() {
            debug_assert!(self.queue.is_empty(), "idle server with a non-empty queue");
            self.in_service = Some(pkt);
            Offer::StartService
        } else if self.queue.len() < self.capacity {
            self.queue.push_back(pkt);
            Offer::Queued
        } else {
            self.drops += 1;
            Offer::Dropped
        }
    }

    /// Complete the in-service transmission: returns the departed packet and,
    /// if another packet was waiting, the packet now entering service (whose
    /// departure the engine must schedule).
    pub fn complete_service(&mut self) -> (Packet, Option<Packet>) {
        let departed = self
            .in_service
            .take()
            .expect("complete_service on idle port");
        self.bits_sent += departed.size_bits;
        if let Some(pkt) = self.queue.pop_front() {
            self.in_service = Some(pkt);
        }
        (departed, self.in_service)
    }

    /// Number of waiting packets (excludes the in-service packet).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// True when a packet is in transmission.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Packets currently held by the port (waiting + in service).
    pub fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }
}

/// Per-port scheduler state for one [`SchedulingPolicy`].
#[derive(Debug)]
enum SchedState {
    /// One shared FIFO across classes (classes only label packets).
    Fifo,
    /// Strict priority needs no state: lowest non-empty class wins.
    Strict,
    /// SCFQ bookkeeping: the virtual time (finish tag of the in-service
    /// packet) and each class's last-assigned finish tag. Tags of waiting
    /// packets are stored in `SchedPort::tags`, parallel to the queues.
    Wfq {
        virtual_time: f64,
        last_finish: Vec<f64>,
    },
    /// DRR bookkeeping: per-class deficit counters, the round-robin cursor
    /// and whether the cursor's class is still owed its quantum this visit.
    Drr {
        deficits: Vec<f64>,
        cursor: usize,
        owed_quantum: bool,
    },
}

/// The transmission side of one directed link under a multi-queue QoS
/// discipline: one waiting queue per traffic class, a shared drop-tail
/// admission budget (total waiting packets, so buffering stays a node
/// property exactly like [`OutputPort`]), and a [`SchedulingPolicy`]
/// arbitrating which class's head-of-line packet enters service next.
///
/// The API mirrors [`OutputPort`] (`offer` / `complete_service`) so the
/// engine's event handling is identical; only packet *ordering* differs.
#[derive(Debug)]
pub struct SchedPort {
    /// One waiting queue per class.
    queues: Vec<VecDeque<Packet>>,
    /// SCFQ finish tags, parallel to `queues` (unused by other policies).
    tags: Vec<VecDeque<f64>>,
    /// Packet currently being transmitted, if any.
    in_service: Option<Packet>,
    /// Max *total* waiting packets across all classes.
    capacity: usize,
    /// Total waiting packets (cached sum of queue lengths).
    waiting: usize,
    /// WFQ weights / DRR quanta copied out of the policy.
    weights: Vec<f64>,
    state: SchedState,
    /// Packets dropped at this port (shared waiting room full).
    pub drops: u64,
    /// Total bits whose transmission completed (see [`OutputPort::bits_sent`]).
    pub bits_sent: f64,
    /// Per-class admitted packets (queued or immediately served).
    pub class_admitted: Vec<u64>,
    /// Per-class drop-tail drops.
    pub class_dropped: Vec<u64>,
    /// Per-class completed transmissions.
    pub class_sent_pkts: Vec<u64>,
    /// Per-class completed bits.
    pub class_sent_bits: Vec<f64>,
}

impl SchedPort {
    /// A scheduled port with `num_classes` queues sharing `capacity`
    /// waiting slots, arbitrated by `policy`.
    pub fn new(num_classes: usize, capacity: usize, policy: &SchedulingPolicy) -> Self {
        assert!(num_classes > 0, "need at least one class");
        let (state, weights) = match policy {
            SchedulingPolicy::Fifo => (SchedState::Fifo, vec![1.0; num_classes]),
            SchedulingPolicy::StrictPriority => (SchedState::Strict, vec![1.0; num_classes]),
            SchedulingPolicy::Wfq { weights } => {
                assert_eq!(weights.len(), num_classes, "one WFQ weight per class");
                (
                    SchedState::Wfq {
                        virtual_time: 0.0,
                        last_finish: vec![0.0; num_classes],
                    },
                    weights.clone(),
                )
            }
            SchedulingPolicy::Drr { quanta_bits } => {
                assert_eq!(quanta_bits.len(), num_classes, "one DRR quantum per class");
                (
                    SchedState::Drr {
                        deficits: vec![0.0; num_classes],
                        cursor: 0,
                        owed_quantum: true,
                    },
                    quanta_bits.clone(),
                )
            }
        };
        Self {
            queues: vec![VecDeque::new(); num_classes],
            tags: vec![VecDeque::new(); num_classes],
            in_service: None,
            capacity,
            waiting: 0,
            weights,
            state,
            drops: 0,
            bits_sent: 0.0,
            class_admitted: vec![0; num_classes],
            class_dropped: vec![0; num_classes],
            class_sent_pkts: vec![0; num_classes],
            class_sent_bits: vec![0.0; num_classes],
        }
    }

    /// Offer a packet: straight to service when idle, else drop-tail
    /// admission against the *shared* waiting budget.
    pub fn offer(&mut self, pkt: Packet) -> Offer {
        let c = pkt.class as usize;
        debug_assert!(c < self.queues.len(), "class out of range");
        if self.in_service.is_none() {
            debug_assert_eq!(self.waiting, 0, "idle server with waiting packets");
            // An empty system resets the SCFQ virtual clock (standard SCFQ:
            // tags only order packets within a busy period).
            if let SchedState::Wfq {
                virtual_time,
                last_finish,
            } = &mut self.state
            {
                *virtual_time = pkt.size_bits / self.weights[c];
                last_finish.fill(0.0);
                last_finish[c] = *virtual_time;
            }
            self.class_admitted[c] += 1;
            self.in_service = Some(pkt);
            return Offer::StartService;
        }
        if self.waiting < self.capacity {
            if let SchedState::Wfq {
                virtual_time,
                last_finish,
            } = &mut self.state
            {
                let f = virtual_time.max(last_finish[c]) + pkt.size_bits / self.weights[c];
                last_finish[c] = f;
                self.tags[c].push_back(f);
            }
            self.queues[c].push_back(pkt);
            self.waiting += 1;
            self.class_admitted[c] += 1;
            Offer::Queued
        } else {
            self.drops += 1;
            self.class_dropped[c] += 1;
            Offer::Dropped
        }
    }

    /// Complete the in-service transmission; the scheduler picks the next
    /// packet to serve (if any). Same contract as
    /// [`OutputPort::complete_service`].
    pub fn complete_service(&mut self) -> (Packet, Option<Packet>) {
        let departed = self
            .in_service
            .take()
            .expect("complete_service on idle port");
        self.bits_sent += departed.size_bits;
        let c = departed.class as usize;
        self.class_sent_pkts[c] += 1;
        self.class_sent_bits[c] += departed.size_bits;
        if let Some(next) = self.dequeue_next() {
            self.in_service = Some(next);
        }
        (departed, self.in_service)
    }

    /// Pick the next packet per the scheduling policy. `None` iff all
    /// queues are empty — the port never idles with work waiting (work
    /// conservation, pinned by the proptest suite).
    fn dequeue_next(&mut self) -> Option<Packet> {
        if self.waiting == 0 {
            return None;
        }
        self.waiting -= 1;
        match &mut self.state {
            SchedState::Fifo => {
                // Shared FIFO across classes: earliest enqueue wins. With a
                // per-class queue representation, "earliest" is the head
                // with the smallest creation order; the legacy single-class
                // case has one queue and degenerates to plain FIFO. For the
                // multi-class FIFO we use head-of-line created_at as the
                // enqueue-order proxy (ties broken by class index).
                let c = (0..self.queues.len())
                    .filter(|&c| !self.queues[c].is_empty())
                    .min_by(|&a, &b| {
                        let ta = self.queues[a].front().unwrap().created_at;
                        let tb = self.queues[b].front().unwrap().created_at;
                        ta.partial_cmp(&tb).unwrap().then(a.cmp(&b))
                    })
                    .expect("waiting > 0 implies a non-empty queue");
                self.queues[c].pop_front()
            }
            SchedState::Strict => {
                let c = (0..self.queues.len())
                    .find(|&c| !self.queues[c].is_empty())
                    .expect("waiting > 0 implies a non-empty queue");
                self.queues[c].pop_front()
            }
            SchedState::Wfq { virtual_time, .. } => {
                let c = (0..self.queues.len())
                    .filter(|&c| !self.queues[c].is_empty())
                    .min_by(|&a, &b| {
                        let fa = self.tags[a].front().unwrap();
                        let fb = self.tags[b].front().unwrap();
                        fa.partial_cmp(fb).unwrap().then(a.cmp(&b))
                    })
                    .expect("waiting > 0 implies a non-empty queue");
                let tag = self.tags[c].pop_front().expect("tag parallel to queue");
                *virtual_time = tag;
                self.queues[c].pop_front()
            }
            SchedState::Drr {
                deficits,
                cursor,
                owed_quantum,
            } => {
                let n = self.queues.len();
                loop {
                    let c = *cursor;
                    if self.queues[c].is_empty() {
                        // A class that empties forfeits its residual credit
                        // (standard DRR: deficits only persist while
                        // backlogged).
                        deficits[c] = 0.0;
                        *cursor = (c + 1) % n;
                        *owed_quantum = true;
                        continue;
                    }
                    if *owed_quantum {
                        deficits[c] += self.weights[c];
                        *owed_quantum = false;
                    }
                    let head = self.queues[c].front().unwrap().size_bits;
                    if deficits[c] >= head {
                        deficits[c] -= head;
                        return self.queues[c].pop_front();
                    }
                    *cursor = (c + 1) % n;
                    *owed_quantum = true;
                }
            }
        }
    }

    /// Number of waiting packets across all classes.
    pub fn backlog(&self) -> usize {
        self.waiting
    }

    /// Waiting packets of one class.
    pub fn class_backlog(&self, class: usize) -> usize {
        self.queues[class].len()
    }

    /// True when a packet is in transmission.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Class of the packet currently in service, if any.
    pub fn in_service_class(&self) -> Option<u8> {
        self.in_service.map(|p| p.class)
    }

    /// Number of traffic classes.
    pub fn num_classes(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize) -> Packet {
        Packet {
            flow,
            class: 0,
            size_bits: 1000.0,
            created_at: 0.0,
            hop: 0,
        }
    }

    fn cpkt(class: u8, size_bits: f64) -> Packet {
        Packet {
            flow: 0,
            class,
            size_bits,
            created_at: 0.0,
            hop: 0,
        }
    }

    #[test]
    fn idle_port_starts_service_immediately() {
        let mut port = OutputPort::new(2);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert!(port.busy());
        assert_eq!(port.backlog(), 0);
    }

    #[test]
    fn busy_port_queues_up_to_capacity_then_drops() {
        let mut port = OutputPort::new(2);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert_eq!(port.offer(pkt(1)), Offer::Queued);
        assert_eq!(port.offer(pkt(2)), Offer::Queued);
        assert_eq!(port.offer(pkt(3)), Offer::Dropped);
        assert_eq!(port.drops, 1);
        assert_eq!(port.occupancy(), 3);
    }

    #[test]
    fn tiny_queue_holds_one_waiting_packet() {
        let mut port = OutputPort::new(1);
        assert_eq!(port.offer(pkt(0)), Offer::StartService);
        assert_eq!(port.offer(pkt(1)), Offer::Queued);
        assert_eq!(port.offer(pkt(2)), Offer::Dropped);
    }

    #[test]
    fn completion_promotes_fifo_order() {
        let mut port = OutputPort::new(4);
        port.offer(pkt(0));
        port.offer(pkt(1));
        port.offer(pkt(2));
        let (out0, next) = port.complete_service();
        assert_eq!(out0.flow, 0);
        assert_eq!(next.unwrap().flow, 1, "FIFO: flow 1 enters service next");
        let (out1, next) = port.complete_service();
        assert_eq!(out1.flow, 1);
        assert_eq!(next.unwrap().flow, 2);
        let (out2, next) = port.complete_service();
        assert_eq!(out2.flow, 2);
        assert!(next.is_none());
        assert!(!port.busy());
    }

    #[test]
    fn bits_sent_counts_completed_transmissions_only() {
        let mut port = OutputPort::new(0); // no waiting room at all
        port.offer(pkt(0));
        port.offer(pkt(1)); // dropped
        assert_eq!(port.bits_sent, 0.0, "in-flight bits are not counted yet");
        assert_eq!(port.drops, 1);
        port.complete_service();
        assert_eq!(port.bits_sent, 1000.0);
    }

    #[test]
    #[should_panic(expected = "complete_service on idle port")]
    fn completing_idle_port_is_a_bug() {
        OutputPort::new(1).complete_service();
    }

    #[test]
    fn strict_priority_serves_highest_class_first() {
        let mut port = SchedPort::new(2, 8, &SchedulingPolicy::StrictPriority);
        assert_eq!(port.offer(cpkt(1, 1000.0)), Offer::StartService);
        port.offer(cpkt(1, 1000.0));
        port.offer(cpkt(0, 1000.0)); // arrives last but outranks class 1
        let (_, next) = port.complete_service();
        assert_eq!(next.unwrap().class, 0, "class 0 jumps the class-1 queue");
        let (_, next) = port.complete_service();
        assert_eq!(next.unwrap().class, 1);
    }

    #[test]
    fn sched_port_shares_one_waiting_budget() {
        let mut port = SchedPort::new(2, 2, &SchedulingPolicy::StrictPriority);
        port.offer(cpkt(1, 1000.0)); // in service
        assert_eq!(port.offer(cpkt(1, 1000.0)), Offer::Queued);
        assert_eq!(port.offer(cpkt(0, 1000.0)), Offer::Queued);
        assert_eq!(port.offer(cpkt(0, 1000.0)), Offer::Dropped);
        assert_eq!(port.class_dropped, vec![1, 0]);
        assert_eq!(port.backlog(), 2);
    }

    #[test]
    fn wfq_interleaves_by_weight() {
        // Equal weights, equal sizes: finish tags alternate classes even
        // though all class-0 packets arrived first.
        let mut port = SchedPort::new(
            2,
            16,
            &SchedulingPolicy::Wfq {
                weights: vec![1.0, 1.0],
            },
        );
        port.offer(cpkt(0, 1000.0)); // in service
        for _ in 0..3 {
            port.offer(cpkt(0, 1000.0));
        }
        for _ in 0..3 {
            port.offer(cpkt(1, 1000.0));
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let (_, next) = port.complete_service();
            order.push(next.unwrap().class);
        }
        assert_eq!(
            order,
            vec![0, 1, 0, 1, 0, 1],
            "SCFQ alternates equal weights"
        );
    }

    #[test]
    fn wfq_heavier_weight_gets_more_service() {
        let mut port = SchedPort::new(
            2,
            64,
            &SchedulingPolicy::Wfq {
                weights: vec![3.0, 1.0],
            },
        );
        port.offer(cpkt(0, 1000.0));
        for _ in 0..30 {
            port.offer(cpkt(0, 1000.0));
            port.offer(cpkt(1, 1000.0));
        }
        let mut served = [0u32; 2];
        for _ in 0..20 {
            let (_, next) = port.complete_service();
            served[next.unwrap().class as usize] += 1;
        }
        assert!(
            served[0] >= 3 * served[1] - 2,
            "3:1 weights should serve ~3x class 0: {served:?}"
        );
    }

    #[test]
    fn drr_respects_quanta_ratio() {
        let mut port = SchedPort::new(
            2,
            64,
            &SchedulingPolicy::Drr {
                quanta_bits: vec![2000.0, 1000.0],
            },
        );
        port.offer(cpkt(0, 1000.0));
        for _ in 0..30 {
            port.offer(cpkt(0, 1000.0));
            port.offer(cpkt(1, 1000.0));
        }
        let mut bits = [0.0f64; 2];
        for _ in 0..30 {
            let (departed, _) = port.complete_service();
            bits[departed.class as usize] += departed.size_bits;
        }
        let ratio = bits[0] / bits[1];
        assert!(
            (ratio - 2.0).abs() < 0.35,
            "2:1 quanta should send ~2:1 bits, got {ratio}"
        );
    }

    #[test]
    fn single_class_fifo_sched_port_matches_output_port_order() {
        let mut fifo = OutputPort::new(3);
        let mut sched = SchedPort::new(1, 3, &SchedulingPolicy::Fifo);
        for i in 0..5 {
            assert_eq!(fifo.offer(pkt(i)), sched.offer(pkt(i)));
        }
        assert_eq!(fifo.drops, sched.drops);
        for _ in 0..4 {
            let (a, _) = fifo.complete_service();
            let (b, _) = sched.complete_service();
            assert_eq!(a.flow, b.flow);
        }
        assert!(!fifo.busy() && !sched.busy());
    }
}
