//! QoS scenario dimensions: per-flow ToS classes, multi-queue scheduling
//! policies and heterogeneous traffic models.
//!
//! The legacy simulator models every output port as one FIFO queue and every
//! flow as a Poisson source with exponential packet sizes. A [`QosSpec`]
//! widens that in three orthogonal directions:
//!
//! - **Classes** — every flow carries a ToS class `0..num_classes`; every
//!   output port keeps one waiting queue per class (shared drop-tail
//!   admission budget, so total buffering stays a node property exactly as
//!   in the FIFO model).
//! - **Scheduling** — a [`SchedulingPolicy`] arbitrates between the
//!   per-class queues: Strict Priority, WFQ (implemented as self-clocked
//!   fair queueing) or DRR (deficit round robin).
//! - **Traffic models** — each class draws its packets from a
//!   [`TrafficProfile`]: the legacy Poisson process, an interrupted-Poisson
//!   on-off source, compound-Poisson bursts, or a multimodal packet-size
//!   mixture (the bimodal small-ACK / full-MTU shape of real traces).
//!
//! A spec with one class, the [`SchedulingPolicy::Fifo`] policy and
//! [`TrafficProfile::Poisson`] everywhere is *semantically* the legacy
//! model; the engine routes that case through the untouched legacy event
//! loop so existing scenarios stay bit-for-bit identical.

use serde::{Deserialize, Serialize};

/// How a multi-queue output port arbitrates between its per-class queues.
///
/// Class `0` is the highest-priority class throughout (DSCP-style: lower
/// numeric class index = more important traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// One shared FIFO queue; classes only label packets. With a single
    /// class this is exactly the legacy port model.
    Fifo,
    /// Non-preemptive strict priority: the server always picks the
    /// lowest-indexed non-empty class; an in-service packet finishes.
    StrictPriority,
    /// Weighted fair queueing, realized as self-clocked fair queueing
    /// (SCFQ): packets get finish tags `F = max(V, F_prev_class) +
    /// size/weight` and the server picks the smallest tag.
    Wfq {
        /// One positive weight per class; only ratios matter.
        weights: Vec<f64>,
    },
    /// Deficit round robin: each class accrues `quantum` bits of sending
    /// credit per round and sends head-of-line packets while credit lasts.
    Drr {
        /// One positive quantum (bits per round) per class.
        quanta_bits: Vec<f64>,
    },
}

impl SchedulingPolicy {
    /// Check arity and positivity against the class count.
    pub fn validate(&self, num_classes: usize) -> Result<(), String> {
        match self {
            SchedulingPolicy::Fifo | SchedulingPolicy::StrictPriority => Ok(()),
            SchedulingPolicy::Wfq { weights } => {
                if weights.len() != num_classes {
                    return Err(format!(
                        "WFQ has {} weights for {num_classes} classes",
                        weights.len()
                    ));
                }
                if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
                    return Err("WFQ weights must be positive and finite".into());
                }
                Ok(())
            }
            SchedulingPolicy::Drr { quanta_bits } => {
                if quanta_bits.len() != num_classes {
                    return Err(format!(
                        "DRR has {} quanta for {num_classes} classes",
                        quanta_bits.len()
                    ));
                }
                if quanta_bits.iter().any(|q| !q.is_finite() || *q <= 0.0) {
                    return Err("DRR quanta must be positive and finite".into());
                }
                Ok(())
            }
        }
    }

    /// The long-run bandwidth share this policy nominally grants `class`
    /// when all classes are backlogged. Strict priority is modeled as a
    /// rank-proportional share (it has no fixed share; the rank ordering is
    /// what the GNN's queue features need). Shares sum to 1 across classes.
    pub fn class_share(&self, class: usize, num_classes: usize) -> f64 {
        debug_assert!(class < num_classes);
        let n = num_classes as f64;
        match self {
            SchedulingPolicy::Fifo => 1.0 / n,
            SchedulingPolicy::StrictPriority => {
                // Rank weight n, n-1, …, 1 normalized: class 0 largest.
                let rank = (num_classes - class) as f64;
                rank / (n * (n + 1.0) / 2.0)
            }
            SchedulingPolicy::Wfq { weights } => weights[class] / weights.iter().sum::<f64>(),
            SchedulingPolicy::Drr { quanta_bits } => {
                quanta_bits[class] / quanta_bits.iter().sum::<f64>()
            }
        }
    }
}

/// The packet-arrival and packet-size model of one traffic class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficProfile {
    /// The legacy model: Poisson arrivals, truncated-exponential sizes.
    Poisson,
    /// Interrupted Poisson: exponential ON periods emitting at a boosted
    /// rate, silent exponential OFF periods. The mean rate over ON+OFF
    /// equals the flow's configured rate.
    OnOff {
        /// Mean ON-period length in seconds.
        on_mean_s: f64,
        /// Mean OFF-period length in seconds.
        off_mean_s: f64,
    },
    /// Compound Poisson: arrival events carry geometric batches of packets
    /// (mean `batch_mean` per event); the event rate is scaled down so the
    /// mean packet rate still matches the flow's configured rate.
    Bursty {
        /// Mean packets per batch (≥ 1).
        batch_mean: f64,
    },
    /// Poisson arrivals with packet sizes drawn from a discrete mixture —
    /// e.g. the classic bimodal 64-byte / 1500-byte internet mix.
    MultimodalSizes {
        /// `(size_bits, weight)` mixture components; weights need not be
        /// normalized.
        modes: Vec<(f64, f64)>,
    },
}

impl TrafficProfile {
    /// Check the profile's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TrafficProfile::Poisson => Ok(()),
            TrafficProfile::OnOff {
                on_mean_s,
                off_mean_s,
            } => {
                let on_ok = on_mean_s.is_finite() && *on_mean_s > 0.0;
                let off_ok = off_mean_s.is_finite() && *off_mean_s >= 0.0;
                if !(on_ok && off_ok) {
                    return Err("on-off periods must be positive/non-negative".into());
                }
                Ok(())
            }
            TrafficProfile::Bursty { batch_mean } => {
                if !(batch_mean.is_finite() && *batch_mean >= 1.0) {
                    return Err("bursty batch mean must be >= 1".into());
                }
                Ok(())
            }
            TrafficProfile::MultimodalSizes { modes } => {
                if modes.is_empty() {
                    return Err("multimodal size mixture needs at least one mode".into());
                }
                if !modes
                    .iter()
                    .all(|(s, w)| s.is_finite() && *s >= 1.0 && w.is_finite() && *w > 0.0)
                {
                    return Err("multimodal modes need size >= 1 bit and positive weight".into());
                }
                Ok(())
            }
        }
    }

    /// Mean packet size in bits under this profile, given the simulation's
    /// baseline mean (used so rate→lambda conversion stays consistent).
    pub fn mean_packet_bits(&self, baseline_mean_bits: f64) -> f64 {
        match self {
            TrafficProfile::MultimodalSizes { modes } => {
                let wsum: f64 = modes.iter().map(|(_, w)| w).sum();
                modes.iter().map(|(s, w)| s * w).sum::<f64>() / wsum
            }
            _ => baseline_mean_bits,
        }
    }
}

/// A complete QoS scenario description, attached to one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// The scheduling policy applied at every output port.
    pub policy: SchedulingPolicy,
    /// One traffic profile per class (`class_profiles.len()` is the class
    /// count).
    pub class_profiles: Vec<TrafficProfile>,
    /// ToS class of every flow, aligned with the simulation's flow table
    /// (positive-rate pairs in routing iteration order).
    pub flow_classes: Vec<u8>,
}

impl QosSpec {
    /// A single-class FIFO/Poisson spec for `num_flows` flows — the legacy
    /// model expressed as a `QosSpec`.
    pub fn fifo(num_flows: usize) -> Self {
        Self {
            policy: SchedulingPolicy::Fifo,
            class_profiles: vec![TrafficProfile::Poisson],
            flow_classes: vec![0; num_flows],
        }
    }

    /// Number of traffic classes.
    pub fn num_classes(&self) -> usize {
        self.class_profiles.len()
    }

    /// True when this spec is semantically the legacy FIFO model: one class
    /// scheduled FIFO. (Traffic profiles may still differ from Poisson —
    /// they change arrivals, not the queueing structure.)
    pub fn is_single_class_fifo(&self) -> bool {
        self.num_classes() == 1 && self.policy == SchedulingPolicy::Fifo
    }

    /// Check internal consistency against the flow-table length.
    pub fn validate(&self, num_flows: usize) -> Result<(), String> {
        if self.class_profiles.is_empty() {
            return Err("QoS spec needs at least one class".into());
        }
        if self.num_classes() > u8::MAX as usize {
            return Err("at most 255 traffic classes".into());
        }
        self.policy.validate(self.num_classes())?;
        for profile in &self.class_profiles {
            profile.validate()?;
        }
        if self.flow_classes.len() != num_flows {
            return Err(format!(
                "QoS spec classifies {} flows, simulation has {num_flows}",
                self.flow_classes.len()
            ));
        }
        if let Some(c) = self
            .flow_classes
            .iter()
            .find(|&&c| c as usize >= self.num_classes())
        {
            return Err(format!(
                "flow class {c} out of range (num_classes = {})",
                self.num_classes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let n = 3;
        for policy in [
            SchedulingPolicy::Fifo,
            SchedulingPolicy::StrictPriority,
            SchedulingPolicy::Wfq {
                weights: vec![4.0, 2.0, 1.0],
            },
            SchedulingPolicy::Drr {
                quanta_bits: vec![3000.0, 2000.0, 1000.0],
            },
        ] {
            let total: f64 = (0..n).map(|c| policy.class_share(c, n)).sum();
            assert!((total - 1.0).abs() < 1e-12, "{policy:?} -> {total}");
        }
    }

    #[test]
    fn strict_priority_share_is_rank_monotone() {
        let p = SchedulingPolicy::StrictPriority;
        assert!(p.class_share(0, 3) > p.class_share(1, 3));
        assert!(p.class_share(1, 3) > p.class_share(2, 3));
    }

    #[test]
    fn validate_catches_arity_mismatches() {
        let spec = QosSpec {
            policy: SchedulingPolicy::Wfq {
                weights: vec![1.0, 2.0],
            },
            class_profiles: vec![TrafficProfile::Poisson; 3],
            flow_classes: vec![0, 1, 2],
        };
        assert!(spec.validate(3).is_err(), "2 weights for 3 classes");

        let spec = QosSpec {
            policy: SchedulingPolicy::StrictPriority,
            class_profiles: vec![TrafficProfile::Poisson; 2],
            flow_classes: vec![0, 2],
        };
        assert!(spec.validate(2).is_err(), "class 2 out of range");
    }

    #[test]
    fn multimodal_mean_is_the_mixture_mean() {
        let p = TrafficProfile::MultimodalSizes {
            modes: vec![(512.0, 3.0), (12000.0, 1.0)],
        };
        let mean = p.mean_packet_bits(1000.0);
        assert!((mean - (512.0 * 3.0 + 12000.0) / 4.0).abs() < 1e-9);
        assert_eq!(TrafficProfile::Poisson.mean_packet_bits(1000.0), 1000.0);
    }
}
