//! # rn-netsim
//!
//! A packet-level discrete-event network simulator — the stand-in for the
//! paper's in-house OMNeT++ simulator. It produces the ground-truth per-path
//! delay/jitter/loss labels the RouteNet models are trained on.
//!
//! ## Model
//!
//! - Every ordered source–destination pair with positive traffic is a *flow*.
//!   Flows emit packets as independent Poisson processes (exponential
//!   inter-arrival times) with i.i.d. exponential packet sizes, and every
//!   packet follows the pair's routed path.
//! - Every directed link has one *output port* at its transmitting node: a
//!   single server (transmission time = size / capacity) with a finite FIFO
//!   drop-tail queue. **Queue capacity is a per-node property** — the feature
//!   the extended RouteNet models — counted in waiting packets (the packet in
//!   transmission does not occupy a slot).
//! - Store-and-forward: a packet is eligible at the next hop only after its
//!   last bit leaves the link (plus propagation delay).
//!
//! ## Determinism
//!
//! A simulation is a pure function of its inputs and one `u64` seed. Each flow
//! draws arrivals and sizes from its own split RNG stream, and simultaneous
//! events are ordered by a global sequence number, so results do not depend on
//! platform or on how many flows exist.
//!
//! ## QoS scenarios
//!
//! A [`QosSpec`] attaches per-flow ToS classes, a multi-queue scheduling
//! policy (Strict Priority, WFQ/SCFQ, or DRR — see [`SchedulingPolicy`]) and
//! per-class traffic models ([`TrafficProfile`]: Poisson, on-off, bursty
//! batches, multimodal packet sizes) to a run via [`simulate_qos`]. Results
//! then carry pooled per-class statistics ([`metrics::ClassStats`]) next to
//! the per-flow labels. A single-class FIFO/Poisson spec reproduces the
//! legacy model bit for bit, and runs without a spec never touch the QoS
//! code path at all.
//!
//! ## Validation
//!
//! The test suite checks conservation (created = delivered + dropped +
//! in-flight), FIFO ordering per port, scheduler invariants (work
//! conservation, strict-priority ordering, DRR fairness bounds — see
//! `tests/qos_proptests.rs`), and — on single-queue scenarios — agreement
//! with closed-form M/M/1, M/M/1/K and priority/WFQ results from
//! `rn-qtheory`.

pub mod config;
pub mod engine;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod port;
pub mod qos;

pub use config::{QueueProfile, SimConfig};
pub use engine::{simulate, simulate_qos, Simulation};
pub use fault::FaultPlan;
pub use metrics::{ClassStats, FlowStats, LinkStats, SimResult};
pub use qos::{QosSpec, SchedulingPolicy, TrafficProfile};
