//! Per-flow and per-link measurement, plus conservation accounting.

use serde::{Deserialize, Serialize};

/// Online accumulator for one flow's delivered packets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowAccumulator {
    /// Packets created (entered the first queue).
    pub created: u64,
    /// Packets delivered after warmup.
    pub delivered: u64,
    /// Packets delivered during warmup (counted for conservation only).
    pub delivered_warmup: u64,
    /// Packets dropped anywhere along the path.
    pub dropped: u64,
    delay_sum: f64,
    delay_sq_sum: f64,
}

impl FlowAccumulator {
    /// Record a post-warmup delivery with end-to-end delay `delay_s`.
    pub fn record_delivery(&mut self, delay_s: f64) {
        debug_assert!(delay_s >= 0.0, "negative delay {delay_s}");
        self.delivered += 1;
        self.delay_sum += delay_s;
        self.delay_sq_sum += delay_s * delay_s;
    }

    /// Fold another accumulator in (used to aggregate flows into per-class
    /// statistics — sums are exact, so class stats equal what one big
    /// accumulator over the same deliveries would report).
    pub fn merge(&mut self, other: &FlowAccumulator) {
        self.created += other.created;
        self.delivered += other.delivered;
        self.delivered_warmup += other.delivered_warmup;
        self.dropped += other.dropped;
        self.delay_sum += other.delay_sum;
        self.delay_sq_sum += other.delay_sq_sum;
    }

    /// Finalize into reportable statistics.
    pub fn stats(&self) -> FlowStats {
        let mean = if self.delivered > 0 {
            self.delay_sum / self.delivered as f64
        } else {
            0.0
        };
        let var = if self.delivered > 0 {
            (self.delay_sq_sum / self.delivered as f64 - mean * mean).max(0.0)
        } else {
            0.0
        };
        let attempts = self.delivered + self.delivered_warmup + self.dropped;
        FlowStats {
            delivered: self.delivered,
            dropped: self.dropped,
            mean_delay_s: mean,
            jitter_s: var.sqrt(),
            loss_ratio: if attempts > 0 {
                self.dropped as f64 / attempts as f64
            } else {
                0.0
            },
        }
    }
}

/// Final per-flow statistics — the labels RouteNet learns to predict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets delivered after warmup.
    pub delivered: u64,
    /// Packets dropped along the path.
    pub dropped: u64,
    /// Mean end-to-end delay in seconds (queueing + transmission +
    /// propagation over every hop).
    pub mean_delay_s: f64,
    /// Delay standard deviation in seconds (the paper's jitter metric).
    pub jitter_s: f64,
    /// Fraction of attempted packets that were dropped.
    pub loss_ratio: f64,
}

/// Per-link throughput statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bits accepted for transmission over the whole run.
    pub bits_sent: f64,
    /// Packets dropped at this port.
    pub drops: u64,
    /// bits_sent / (capacity × duration): average utilization over the run.
    pub utilization: f64,
}

/// Aggregate statistics of one traffic class (all its flows pooled, so a
/// class's mean/jitter are exactly what one accumulator over the same
/// deliveries would report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The ToS class (0 = highest priority).
    pub class: u8,
    /// Flows assigned to this class.
    pub num_flows: usize,
    /// Packets delivered after warmup across the class's flows.
    pub delivered: u64,
    /// Packets dropped across the class's flows.
    pub dropped: u64,
    /// Delivered-weighted mean end-to-end delay in seconds.
    pub mean_delay_s: f64,
    /// Pooled delay standard deviation in seconds.
    pub jitter_s: f64,
    /// Dropped / attempted over the class's flows.
    pub loss_ratio: f64,
}

impl ClassStats {
    /// Pool per-flow accumulators into per-class statistics.
    /// `flow_classes[i]` is the class of flow `i`; `num_classes` fixes the
    /// output length (classes with no flows report zeroes).
    pub fn from_accumulators(
        accs: &[FlowAccumulator],
        flow_classes: &[u8],
        num_classes: usize,
    ) -> Vec<ClassStats> {
        assert_eq!(accs.len(), flow_classes.len(), "one class per flow");
        let mut pooled = vec![FlowAccumulator::default(); num_classes];
        let mut counts = vec![0usize; num_classes];
        for (acc, &c) in accs.iter().zip(flow_classes) {
            pooled[c as usize].merge(acc);
            counts[c as usize] += 1;
        }
        pooled
            .iter()
            .zip(counts)
            .enumerate()
            .map(|(c, (acc, num_flows))| {
                let s = acc.stats();
                ClassStats {
                    class: c as u8,
                    num_flows,
                    delivered: s.delivered,
                    dropped: s.dropped,
                    mean_delay_s: s.mean_delay_s,
                    jitter_s: s.jitter_s,
                    loss_ratio: s.loss_ratio,
                }
            })
            .collect()
    }
}

/// Complete result of one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-flow statistics, indexed like the flow table (see
    /// `crate::Simulation::flows`).
    pub flows: Vec<FlowStats>,
    /// `(src, dst)` of each flow, aligned with `flows`.
    pub flow_pairs: Vec<(usize, usize)>,
    /// ToS class of each flow, aligned with `flows`. Empty for legacy
    /// (non-QoS) runs.
    pub flow_classes: Vec<u8>,
    /// Per-class pooled statistics. Empty for legacy (non-QoS) runs.
    pub classes: Vec<ClassStats>,
    /// Per-directed-link statistics.
    pub links: Vec<LinkStats>,
    /// Total packets created.
    pub total_created: u64,
    /// Total packets delivered (including during warmup).
    pub total_delivered: u64,
    /// Total packets dropped.
    pub total_dropped: u64,
    /// Packets still queued or in flight when the horizon ended.
    pub total_in_flight: u64,
    /// Simulated seconds.
    pub duration_s: f64,
}

impl SimResult {
    /// Conservation invariant: every created packet is delivered, dropped, or
    /// still in the network.
    pub fn conservation_holds(&self) -> bool {
        self.total_created == self.total_delivered + self.total_dropped + self.total_in_flight
    }

    /// The flow stats for a pair, if that pair carried traffic.
    pub fn flow(&self, src: usize, dst: usize) -> Option<&FlowStats> {
        self.flow_pairs
            .iter()
            .position(|&p| p == (src, dst))
            .map(|i| &self.flows[i])
    }

    /// Mean delay across flows, weighted by delivered packets.
    pub fn mean_delay_s(&self) -> f64 {
        let (sum, count) = self.flows.iter().fold((0.0, 0u64), |(s, c), f| {
            (s + f.mean_delay_s * f.delivered as f64, c + f.delivered)
        });
        if count > 0 {
            sum / count as f64
        } else {
            0.0
        }
    }

    /// Overall loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        let attempts = self.total_delivered + self.total_dropped;
        if attempts > 0 {
            self.total_dropped as f64 / attempts as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_mean_and_jitter() {
        let mut acc = FlowAccumulator::default();
        for d in [1.0, 2.0, 3.0] {
            acc.record_delivery(d);
        }
        let s = acc.stats();
        assert_eq!(s.delivered, 3);
        assert!((s.mean_delay_s - 2.0).abs() < 1e-12);
        // population std of {1,2,3} = sqrt(2/3)
        assert!((s.jitter_s - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn loss_ratio_counts_all_attempts() {
        let mut acc = FlowAccumulator::default();
        acc.record_delivery(1.0);
        acc.delivered_warmup = 1;
        acc.dropped = 2;
        let s = acc.stats();
        assert!((s.loss_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_flow_yields_zeroes() {
        let s = FlowAccumulator::default().stats();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.mean_delay_s, 0.0);
        assert_eq!(s.jitter_s, 0.0);
        assert_eq!(s.loss_ratio, 0.0);
    }

    #[test]
    fn class_stats_pool_flows_exactly() {
        let mut a = FlowAccumulator::default();
        a.record_delivery(1.0);
        a.record_delivery(3.0);
        let mut b = FlowAccumulator::default();
        b.record_delivery(2.0);
        b.dropped = 2;
        let mut c = FlowAccumulator::default();
        c.record_delivery(10.0);

        // Flows a,b are class 0; flow c is class 1.
        let classes = ClassStats::from_accumulators(&[a.clone(), b, c], &[0, 0, 1], 3);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].num_flows, 2);
        assert_eq!(classes[0].delivered, 3);
        assert_eq!(classes[0].dropped, 2);
        // Pooled mean of {1,3,2} = 2.0 — identical to one big accumulator.
        assert!((classes[0].mean_delay_s - 2.0).abs() < 1e-12);
        assert!((classes[1].mean_delay_s - 10.0).abs() < 1e-12);
        assert_eq!(classes[2].num_flows, 0, "empty class reports zeroes");
        assert_eq!(classes[2].mean_delay_s, 0.0);
    }

    #[test]
    fn conservation_check() {
        let r = SimResult {
            flows: vec![],
            flow_pairs: vec![],
            flow_classes: vec![],
            classes: vec![],
            links: vec![],
            total_created: 10,
            total_delivered: 7,
            total_dropped: 2,
            total_in_flight: 1,
            duration_s: 1.0,
        };
        assert!(r.conservation_holds());
        let mut bad = r.clone();
        bad.total_dropped = 3;
        assert!(!bad.conservation_holds());
    }
}
