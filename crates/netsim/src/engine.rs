//! The simulation engine: event loop, flow sources, hop-by-hop forwarding.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::metrics::{ClassStats, FlowAccumulator, LinkStats, SimResult};
use crate::port::{Offer, OutputPort, Packet, SchedPort};
use crate::qos::{QosSpec, TrafficProfile};
use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_tensor::Prng;

/// One traffic source: an ordered pair with positive demand and a routed path.
#[derive(Debug, Clone)]
struct Flow {
    src: usize,
    dst: usize,
    /// Packet arrival rate in packets per second.
    lambda: f64,
}

/// Mutable per-flow source state for the QoS event loop.
#[derive(Debug, Clone)]
struct SourceState {
    /// The flow's ToS class.
    class: u8,
    /// Arrival-*event* rate while the source is active (boosted for on-off
    /// sources, scaled down for batched sources so the mean packet rate
    /// always matches the flow's configured rate).
    lambda_event: f64,
    /// End of the current ON period (on-off sources only).
    phase_end: f64,
}

/// A fully specified simulation, ready to run.
///
/// Prefer the [`simulate`] convenience function; construct `Simulation`
/// directly when you need access to the flow table before running.
pub struct Simulation<'a> {
    topo: &'a Topology,
    routing: &'a Routing,
    config: &'a SimConfig,
    faults: &'a FaultPlan,
    qos: Option<&'a QosSpec>,
    flows: Vec<Flow>,
}

impl<'a> Simulation<'a> {
    /// Validate inputs and build the flow table.
    ///
    /// `queue_capacity_pkts` holds one waiting-room size per *node*; every
    /// output port of a node inherits the node's capacity (queue size is a
    /// node property — the feature the extended RouteNet models).
    pub fn new(
        topo: &'a Topology,
        routing: &'a Routing,
        traffic: &'a TrafficMatrix,
        config: &'a SimConfig,
        faults: &'a FaultPlan,
    ) -> Result<Self, String> {
        config.validate()?;
        if traffic.num_nodes() != topo.num_nodes() {
            return Err(format!(
                "traffic matrix covers {} nodes, topology has {}",
                traffic.num_nodes(),
                topo.num_nodes()
            ));
        }
        if routing.num_nodes() != topo.num_nodes() {
            return Err(format!(
                "routing covers {} nodes, topology has {}",
                routing.num_nodes(),
                topo.num_nodes()
            ));
        }
        let mut flows = Vec::new();
        for (s, d, _path) in routing.iter_paths() {
            let rate = traffic.rate(s, d);
            if rate > 0.0 {
                flows.push(Flow {
                    src: s,
                    dst: d,
                    lambda: rate / config.mean_packet_bits,
                });
            }
        }
        Ok(Self {
            topo,
            routing,
            config,
            faults,
            qos: None,
            flows,
        })
    }

    /// Like [`Simulation::new`], with a QoS scenario attached: multi-queue
    /// scheduled ports, per-flow ToS classes and per-class traffic models.
    ///
    /// `spec.flow_classes` must classify exactly the flows this simulation
    /// builds (positive-rate pairs in routing iteration order — see
    /// [`Simulation::flow_pairs`]).
    pub fn with_qos(
        topo: &'a Topology,
        routing: &'a Routing,
        traffic: &'a TrafficMatrix,
        config: &'a SimConfig,
        faults: &'a FaultPlan,
        qos: &'a QosSpec,
    ) -> Result<Self, String> {
        let mut sim = Self::new(topo, routing, traffic, config, faults)?;
        qos.validate(sim.flows.len())?;
        sim.qos = Some(qos);
        Ok(sim)
    }

    /// `(src, dst)` of every flow, in simulation order.
    pub fn flow_pairs(&self) -> Vec<(usize, usize)> {
        self.flows.iter().map(|f| (f.src, f.dst)).collect()
    }

    /// Run to the configured horizon.
    ///
    /// `queue_capacity_pkts[n]` is the waiting-packet capacity at node `n`.
    pub fn run(&self, queue_capacity_pkts: &[usize]) -> SimResult {
        match self.qos {
            // The legacy FIFO event loop is kept verbatim (not routed
            // through the scheduled port) so existing scenarios stay
            // bit-for-bit identical.
            None => self.run_legacy(queue_capacity_pkts),
            Some(spec) => self.run_qos(queue_capacity_pkts, spec),
        }
    }

    /// The legacy single-FIFO-per-port event loop.
    fn run_legacy(&self, queue_capacity_pkts: &[usize]) -> SimResult {
        assert_eq!(
            queue_capacity_pkts.len(),
            self.topo.num_nodes(),
            "need one queue capacity per node"
        );
        let master = Prng::new(self.config.seed);
        // Independent streams: one per flow for arrivals/sizes, one for faults.
        let mut flow_rngs: Vec<Prng> = (0..self.flows.len())
            .map(|i| master.split(i as u64))
            .collect();
        let mut fault_rng = master.split(u64::MAX / 2);

        let mut ports: Vec<OutputPort> = self
            .topo
            .links()
            .iter()
            .map(|link| OutputPort::new(queue_capacity_pkts[link.src]))
            .collect();
        let mut accs: Vec<FlowAccumulator> = vec![FlowAccumulator::default(); self.flows.len()];
        let mut events = EventQueue::new();
        // Packets in propagation, stored in a slab with a free list.
        let mut in_flight: Vec<Option<Packet>> = Vec::new();
        let mut free_slots: Vec<usize> = Vec::new();

        // Paths are fetched once per flow: (link sequence, destination).
        let flow_paths: Vec<&rn_netgraph::Path> = self
            .flows
            .iter()
            .map(|f| {
                self.routing
                    .path(f.src, f.dst)
                    .expect("flow implies routed path")
            })
            .collect();

        // Prime each flow's first arrival.
        for (i, flow) in self.flows.iter().enumerate() {
            let t = flow_rngs[i].exponential(flow.lambda);
            if t < self.config.duration_s {
                events.schedule(t, EventKind::FlowArrival { flow: i });
            }
        }

        while let Some(ev) = events.pop() {
            if ev.time > self.config.duration_s {
                break;
            }
            match ev.kind {
                EventKind::FlowArrival { flow } => {
                    let spec = &self.flows[flow];
                    // Draw size (truncated exponential) and next arrival first,
                    // so the flow's RNG stream is consumed in a fixed order.
                    let size = flow_rngs[flow]
                        .exponential(1.0 / self.config.mean_packet_bits)
                        .min(self.config.max_packet_bits)
                        .max(1.0);
                    let next = ev.time + flow_rngs[flow].exponential(spec.lambda);
                    if next < self.config.duration_s {
                        events.schedule(next, EventKind::FlowArrival { flow });
                    }

                    accs[flow].created += 1;
                    let pkt = Packet {
                        flow,
                        class: 0,
                        size_bits: size,
                        created_at: ev.time,
                        hop: 0,
                    };
                    self.launch_on_next_hop(
                        pkt,
                        ev.time,
                        flow_paths[flow],
                        &mut ports,
                        &mut events,
                        &mut accs,
                    );
                }
                EventKind::Departure { link } => {
                    let (departed, next_in_service) = ports[link].complete_service();
                    if let Some(next) = next_in_service {
                        let cap = self.topo.link(link).capacity_bps;
                        events.schedule(
                            ev.time + next.size_bits / cap,
                            EventKind::Departure { link },
                        );
                    }

                    // Random hop loss (fault injection).
                    if self.faults.drop_chance > 0.0 && fault_rng.bernoulli(self.faults.drop_chance)
                    {
                        accs[departed.flow].dropped += 1;
                        continue;
                    }

                    let prop = self.topo.link(link).prop_delay_s;
                    if prop > 0.0 {
                        let slot = match free_slots.pop() {
                            Some(s) => {
                                in_flight[s] = Some(departed);
                                s
                            }
                            None => {
                                in_flight.push(Some(departed));
                                in_flight.len() - 1
                            }
                        };
                        events
                            .schedule(ev.time + prop, EventKind::HopArrival { link, packet: slot });
                    } else {
                        self.complete_hop(
                            departed,
                            ev.time,
                            &mut ports,
                            &mut events,
                            &mut accs,
                            &flow_paths,
                        );
                    }
                }
                EventKind::HopArrival { link: _, packet } => {
                    let pkt = in_flight[packet]
                        .take()
                        .expect("hop arrival for missing packet");
                    free_slots.push(packet);
                    self.complete_hop(
                        pkt,
                        ev.time,
                        &mut ports,
                        &mut events,
                        &mut accs,
                        &flow_paths,
                    );
                }
            }
        }

        // Finalize.
        let mut total_created = 0;
        let mut total_delivered = 0;
        let mut total_dropped = 0;
        for acc in &accs {
            total_created += acc.created;
            total_delivered += acc.delivered + acc.delivered_warmup;
            total_dropped += acc.dropped;
        }
        let links = ports
            .iter()
            .enumerate()
            .map(|(l, port)| LinkStats {
                bits_sent: port.bits_sent,
                drops: port.drops,
                utilization: port.bits_sent
                    / (self.topo.link(l).capacity_bps * self.config.duration_s),
            })
            .collect();
        SimResult {
            flows: accs.iter().map(FlowAccumulator::stats).collect(),
            flow_pairs: self.flow_pairs(),
            flow_classes: Vec::new(),
            classes: Vec::new(),
            links,
            total_created,
            total_delivered,
            total_dropped,
            total_in_flight: total_created - total_delivered - total_dropped,
            duration_s: self.config.duration_s,
        }
    }

    /// The QoS event loop: [`SchedPort`]s, per-class traffic models,
    /// per-class accounting. Structured identically to
    /// [`Simulation::run_legacy`]; every flow's RNG stream is consumed in a
    /// fixed per-event order ([batch size,] sizes, next arrival), and a
    /// Poisson profile makes exactly the legacy draws — so a single-class
    /// FIFO/Poisson spec reproduces the legacy run bit for bit (pinned by
    /// `fifo_qos_spec_reproduces_legacy_run_bitwise`).
    fn run_qos(&self, queue_capacity_pkts: &[usize], spec: &QosSpec) -> SimResult {
        assert_eq!(
            queue_capacity_pkts.len(),
            self.topo.num_nodes(),
            "need one queue capacity per node"
        );
        let num_classes = spec.num_classes();
        let master = Prng::new(self.config.seed);
        let mut flow_rngs: Vec<Prng> = (0..self.flows.len())
            .map(|i| master.split(i as u64))
            .collect();
        let mut fault_rng = master.split(u64::MAX / 2);

        let mut ports: Vec<SchedPort> = self
            .topo
            .links()
            .iter()
            .map(|link| SchedPort::new(num_classes, queue_capacity_pkts[link.src], &spec.policy))
            .collect();
        let mut accs: Vec<FlowAccumulator> = vec![FlowAccumulator::default(); self.flows.len()];
        let mut events = EventQueue::new();
        let mut in_flight: Vec<Option<Packet>> = Vec::new();
        let mut free_slots: Vec<usize> = Vec::new();

        let flow_paths: Vec<&rn_netgraph::Path> = self
            .flows
            .iter()
            .map(|f| {
                self.routing
                    .path(f.src, f.dst)
                    .expect("flow implies routed path")
            })
            .collect();

        let mut sources: Vec<SourceState> = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let class = spec.flow_classes[i];
                let profile = &spec.class_profiles[class as usize];
                // Packets per second under this profile's size model; the
                // bit rate always matches the traffic matrix.
                let rate_bps = f.lambda * self.config.mean_packet_bits;
                let pkt_rate = rate_bps / profile.mean_packet_bits(self.config.mean_packet_bits);
                let lambda_event = match profile {
                    TrafficProfile::OnOff {
                        on_mean_s,
                        off_mean_s,
                    } => pkt_rate * (on_mean_s + off_mean_s) / on_mean_s,
                    TrafficProfile::Bursty { batch_mean } => pkt_rate / batch_mean,
                    _ => pkt_rate,
                };
                SourceState {
                    class,
                    lambda_event,
                    phase_end: 0.0,
                }
            })
            .collect();

        // Prime each flow's first arrival (on-off sources first draw their
        // initial ON period).
        for i in 0..self.flows.len() {
            let profile = &spec.class_profiles[sources[i].class as usize];
            if let TrafficProfile::OnOff { on_mean_s, .. } = profile {
                sources[i].phase_end = flow_rngs[i].exponential(1.0 / on_mean_s);
            }
            let t = draw_next_arrival(profile, &mut flow_rngs[i], 0.0, &mut sources[i]);
            if t < self.config.duration_s {
                events.schedule(t, EventKind::FlowArrival { flow: i });
            }
        }

        let mut size_buf: Vec<f64> = Vec::new();
        while let Some(ev) = events.pop() {
            if ev.time > self.config.duration_s {
                break;
            }
            match ev.kind {
                EventKind::FlowArrival { flow } => {
                    let profile = &spec.class_profiles[sources[flow].class as usize];
                    // Fixed per-event draw order: batch count (bursty
                    // only), then sizes, then the next arrival.
                    let batch = match profile {
                        TrafficProfile::Bursty { batch_mean } => {
                            draw_batch(&mut flow_rngs[flow], *batch_mean)
                        }
                        _ => 1,
                    };
                    size_buf.clear();
                    for _ in 0..batch {
                        size_buf.push(draw_size(profile, &mut flow_rngs[flow], self.config));
                    }
                    let next = draw_next_arrival(
                        profile,
                        &mut flow_rngs[flow],
                        ev.time,
                        &mut sources[flow],
                    );
                    if next < self.config.duration_s {
                        events.schedule(next, EventKind::FlowArrival { flow });
                    }

                    for &size in &size_buf {
                        accs[flow].created += 1;
                        let pkt = Packet {
                            flow,
                            class: sources[flow].class,
                            size_bits: size,
                            created_at: ev.time,
                            hop: 0,
                        };
                        self.launch_on_next_hop_sched(
                            pkt,
                            ev.time,
                            flow_paths[flow],
                            &mut ports,
                            &mut events,
                            &mut accs,
                        );
                    }
                }
                EventKind::Departure { link } => {
                    let (departed, next_in_service) = ports[link].complete_service();
                    if let Some(next) = next_in_service {
                        let cap = self.topo.link(link).capacity_bps;
                        events.schedule(
                            ev.time + next.size_bits / cap,
                            EventKind::Departure { link },
                        );
                    }

                    if self.faults.drop_chance > 0.0 && fault_rng.bernoulli(self.faults.drop_chance)
                    {
                        accs[departed.flow].dropped += 1;
                        continue;
                    }

                    let prop = self.topo.link(link).prop_delay_s;
                    if prop > 0.0 {
                        let slot = match free_slots.pop() {
                            Some(s) => {
                                in_flight[s] = Some(departed);
                                s
                            }
                            None => {
                                in_flight.push(Some(departed));
                                in_flight.len() - 1
                            }
                        };
                        events
                            .schedule(ev.time + prop, EventKind::HopArrival { link, packet: slot });
                    } else {
                        self.complete_hop_sched(
                            departed,
                            ev.time,
                            &mut ports,
                            &mut events,
                            &mut accs,
                            &flow_paths,
                        );
                    }
                }
                EventKind::HopArrival { link: _, packet } => {
                    let pkt = in_flight[packet]
                        .take()
                        .expect("hop arrival for missing packet");
                    free_slots.push(packet);
                    self.complete_hop_sched(
                        pkt,
                        ev.time,
                        &mut ports,
                        &mut events,
                        &mut accs,
                        &flow_paths,
                    );
                }
            }
        }

        let mut total_created = 0;
        let mut total_delivered = 0;
        let mut total_dropped = 0;
        for acc in &accs {
            total_created += acc.created;
            total_delivered += acc.delivered + acc.delivered_warmup;
            total_dropped += acc.dropped;
        }
        let links = ports
            .iter()
            .enumerate()
            .map(|(l, port)| LinkStats {
                bits_sent: port.bits_sent,
                drops: port.drops,
                utilization: port.bits_sent
                    / (self.topo.link(l).capacity_bps * self.config.duration_s),
            })
            .collect();
        SimResult {
            flows: accs.iter().map(FlowAccumulator::stats).collect(),
            flow_pairs: self.flow_pairs(),
            flow_classes: spec.flow_classes.clone(),
            classes: ClassStats::from_accumulators(&accs, &spec.flow_classes, num_classes),
            links,
            total_created,
            total_delivered,
            total_dropped,
            total_in_flight: total_created - total_delivered - total_dropped,
            duration_s: self.config.duration_s,
        }
    }

    /// [`Simulation::complete_hop`] against scheduled ports.
    fn complete_hop_sched(
        &self,
        mut pkt: Packet,
        now: f64,
        ports: &mut [SchedPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
        flow_paths: &[&rn_netgraph::Path],
    ) {
        pkt.hop += 1;
        let path = flow_paths[pkt.flow];
        if pkt.hop == path.links.len() {
            if now >= self.config.warmup_s {
                accs[pkt.flow].record_delivery(now - pkt.created_at);
            } else {
                accs[pkt.flow].delivered_warmup += 1;
            }
        } else {
            self.launch_on_next_hop_sched(pkt, now, path, ports, events, accs);
        }
    }

    /// [`Simulation::launch_on_next_hop`] against scheduled ports.
    fn launch_on_next_hop_sched(
        &self,
        pkt: Packet,
        now: f64,
        path: &rn_netgraph::Path,
        ports: &mut [SchedPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
    ) {
        let link = path.links[pkt.hop];
        if self.faults.link_down(link, now) {
            accs[pkt.flow].dropped += 1;
            return;
        }
        match ports[link].offer(pkt) {
            Offer::StartService => {
                let cap = self.topo.link(link).capacity_bps;
                events.schedule(now + pkt.size_bits / cap, EventKind::Departure { link });
            }
            Offer::Queued => {}
            Offer::Dropped => accs[pkt.flow].dropped += 1,
        }
    }

    /// A packet has fully arrived at the node at the end of `hop - 1` (or was
    /// just created at its source). Deliver it or queue it on the next hop.
    fn complete_hop(
        &self,
        mut pkt: Packet,
        now: f64,
        ports: &mut [OutputPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
        flow_paths: &[&rn_netgraph::Path],
    ) {
        pkt.hop += 1;
        let path = flow_paths[pkt.flow];
        if pkt.hop == path.links.len() {
            // Reached the destination node.
            if now >= self.config.warmup_s {
                accs[pkt.flow].record_delivery(now - pkt.created_at);
            } else {
                accs[pkt.flow].delivered_warmup += 1;
            }
        } else {
            self.launch_on_next_hop(pkt, now, path, ports, events, accs);
        }
    }

    /// Offer `pkt` to the output port of its next hop link.
    fn launch_on_next_hop(
        &self,
        pkt: Packet,
        now: f64,
        path: &rn_netgraph::Path,
        ports: &mut [OutputPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
    ) {
        let link = path.links[pkt.hop];
        if self.faults.link_down(link, now) {
            accs[pkt.flow].dropped += 1;
            return;
        }
        match ports[link].offer(pkt) {
            Offer::StartService => {
                let cap = self.topo.link(link).capacity_bps;
                events.schedule(now + pkt.size_bits / cap, EventKind::Departure { link });
            }
            Offer::Queued => {}
            Offer::Dropped => accs[pkt.flow].dropped += 1,
        }
    }
}

/// One packet size under `profile`, clamped like the legacy draw.
fn draw_size(profile: &TrafficProfile, rng: &mut Prng, config: &SimConfig) -> f64 {
    match profile {
        TrafficProfile::MultimodalSizes { modes } => {
            let wsum: f64 = modes.iter().map(|(_, w)| w).sum();
            let mut u = rng.uniform_pos_f64() * wsum;
            let mut size = modes[modes.len() - 1].0;
            for (s, w) in modes {
                if u <= *w {
                    size = *s;
                    break;
                }
                u -= w;
            }
            size.min(config.max_packet_bits).max(1.0)
        }
        // The legacy truncated exponential (identical draw for Poisson,
        // on-off and bursty sources).
        _ => rng
            .exponential(1.0 / config.mean_packet_bits)
            .min(config.max_packet_bits)
            .max(1.0),
    }
}

/// Geometric batch size with mean `batch_mean` on {1, 2, …} by inversion.
fn draw_batch(rng: &mut Prng, batch_mean: f64) -> usize {
    if batch_mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / batch_mean;
    let u = rng.uniform_pos_f64();
    ((u.ln() / (1.0 - p).ln()).ceil() as usize).clamp(1, 10_000)
}

/// Next arrival-event time for one source. Poisson/bursty/multimodal
/// sources draw one exponential gap; on-off sources additionally skip OFF
/// periods (an interrupted Poisson process: a gap crossing the end of the
/// current ON period is pushed past one or more exponential OFF periods,
/// extending the phase schedule as it goes).
fn draw_next_arrival(
    profile: &TrafficProfile,
    rng: &mut Prng,
    now: f64,
    src: &mut SourceState,
) -> f64 {
    let mut t = now + rng.exponential(src.lambda_event);
    if let TrafficProfile::OnOff {
        on_mean_s,
        off_mean_s,
    } = profile
    {
        while t > src.phase_end {
            let off = rng.exponential(1.0 / off_mean_s);
            let on = rng.exponential(1.0 / on_mean_s);
            t += off;
            src.phase_end += off + on;
        }
    }
    t
}

/// Run one simulation: the main entry point of this crate.
///
/// `queue_capacity_pkts[n]` is the waiting-packet capacity of every output
/// port at node `n`. See the crate docs for the full model.
pub fn simulate(
    topo: &Topology,
    routing: &Routing,
    traffic: &TrafficMatrix,
    queue_capacity_pkts: &[usize],
    config: &SimConfig,
    faults: &FaultPlan,
) -> Result<SimResult, String> {
    Ok(Simulation::new(topo, routing, traffic, config, faults)?.run(queue_capacity_pkts))
}

/// Run one QoS simulation: multi-queue scheduled ports, ToS classes and
/// per-class traffic models per `qos`. Results carry per-class statistics
/// ([`SimResult::classes`]) on top of the per-flow labels.
pub fn simulate_qos(
    topo: &Topology,
    routing: &Routing,
    traffic: &TrafficMatrix,
    queue_capacity_pkts: &[usize],
    config: &SimConfig,
    faults: &FaultPlan,
    qos: &QosSpec,
) -> Result<SimResult, String> {
    Ok(Simulation::with_qos(topo, routing, traffic, config, faults, qos)?.run(queue_capacity_pkts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_netgraph::topologies;

    fn line3() -> (Topology, Routing) {
        let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 10_000.0, 0.0);
        let routing = Routing::shortest_paths(&topo);
        (topo, routing)
    }

    fn run_line3(rate: f64, caps: &[usize], seed: u64) -> SimResult {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, rate);
        let config = SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            seed,
            ..SimConfig::default()
        };
        simulate(&topo, &routing, &tm, caps, &config, &FaultPlan::none()).unwrap()
    }

    #[test]
    fn packets_flow_end_to_end() {
        let r = run_line3(2_000.0, &[32, 32, 32], 1);
        let f = r.flow(0, 2).expect("flow exists");
        assert!(f.delivered > 100, "delivered {}", f.delivered);
        assert!(f.mean_delay_s > 0.0);
        assert!(r.conservation_holds());
    }

    #[test]
    fn delay_includes_both_hops() {
        // At low load delay ≈ 2 transmissions: 2 * size/capacity. The rate is
        // high enough (~200+ packets) that the sample mean of the exponential
        // packet sizes concentrates, keeping the test robust to RNG streams.
        let r = run_line3(500.0, &[32, 32, 32], 2);
        let f = r.flow(0, 2).unwrap();
        // mean size 1000 bits at 10kbps -> 0.1s per hop -> ~0.2s total
        assert!(
            (f.mean_delay_s - 0.2).abs() < 0.05,
            "mean delay {}",
            f.mean_delay_s
        );
        assert!(f.loss_ratio < 1e-3);
    }

    #[test]
    fn overload_causes_loss_with_tiny_queues() {
        // Offered 1.5x capacity with tiny buffers: heavy loss.
        let r = run_line3(15_000.0, &[1, 1, 1], 3);
        let f = r.flow(0, 2).unwrap();
        assert!(f.loss_ratio > 0.2, "loss {}", f.loss_ratio);
        assert!(r.conservation_holds());
    }

    #[test]
    fn bigger_queues_mean_fewer_drops_but_more_delay() {
        let tiny = run_line3(9_000.0, &[1, 1, 1], 4);
        let big = run_line3(9_000.0, &[64, 64, 64], 4);
        let ft = tiny.flow(0, 2).unwrap();
        let fb = big.flow(0, 2).unwrap();
        assert!(
            ft.loss_ratio > fb.loss_ratio,
            "tiny {} vs big {}",
            ft.loss_ratio,
            fb.loss_ratio
        );
        assert!(
            fb.mean_delay_s > ft.mean_delay_s,
            "big buffers queue longer"
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run_line3(8_000.0, &[4, 4, 4], 42);
        let b = run_line3(8_000.0, &[4, 4, 4], 42);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.total_created, b.total_created);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_line3(8_000.0, &[4, 4, 4], 1);
        let b = run_line3(8_000.0, &[4, 4, 4], 2);
        assert_ne!(a.total_created, b.total_created);
    }

    #[test]
    fn full_mesh_on_nsfnet_runs_clean() {
        let topo = topologies::nsfnet_default();
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(9);
        let tm = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.5);
        let config = SimConfig {
            duration_s: 200.0,
            warmup_s: 20.0,
            seed: 9,
            ..SimConfig::default()
        };
        let caps = vec![32; topo.num_nodes()];
        let r = simulate(&topo, &routing, &tm, &caps, &config, &FaultPlan::none()).unwrap();
        assert!(r.conservation_holds());
        assert_eq!(r.flows.len(), 14 * 13);
        assert!(r.mean_delay_s() > 0.0);
        // Utilization must stay physical.
        for l in &r.links {
            assert!(
                l.utilization >= 0.0 && l.utilization <= 1.0 + 1e-9,
                "util {}",
                l.utilization
            );
        }
    }

    #[test]
    fn propagation_delay_adds_to_latency() {
        let topo_fast = Topology::from_undirected_edges("fast", 2, &[(0, 1)], 10_000.0, 0.0);
        let topo_slow = Topology::from_undirected_edges("slow", 2, &[(0, 1)], 10_000.0, 0.25);
        let mut results = Vec::new();
        for topo in [&topo_fast, &topo_slow] {
            let routing = Routing::shortest_paths(topo);
            let mut tm = TrafficMatrix::zeros(2);
            tm.set(0, 1, 100.0);
            let config = SimConfig {
                duration_s: 300.0,
                warmup_s: 30.0,
                seed: 5,
                ..SimConfig::default()
            };
            let r = simulate(topo, &routing, &tm, &[32, 32], &config, &FaultPlan::none()).unwrap();
            results.push(r.flow(0, 1).unwrap().mean_delay_s);
        }
        let extra = results[1] - results[0];
        assert!((extra - 0.25).abs() < 0.02, "propagation delta {extra}");
    }

    #[test]
    fn drop_chance_causes_loss() {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 2_000.0);
        let config = SimConfig {
            duration_s: 300.0,
            warmup_s: 30.0,
            seed: 6,
            ..SimConfig::default()
        };
        let faults = FaultPlan::with_drop_chance(0.1);
        let r = simulate(&topo, &routing, &tm, &[32, 32, 32], &config, &faults).unwrap();
        let f = r.flow(0, 2).unwrap();
        // two hops, 10% per hop -> ~19% loss
        assert!((f.loss_ratio - 0.19).abs() < 0.05, "loss {}", f.loss_ratio);
        assert!(r.conservation_holds());
    }

    #[test]
    fn outage_kills_traffic_during_window() {
        let (topo, routing) = line3();
        let l01 = topo.find_link(0, 1).unwrap();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 2_000.0);
        let config = SimConfig {
            duration_s: 200.0,
            warmup_s: 0.0,
            seed: 7,
            ..SimConfig::default()
        };
        // Link down for the whole run: everything drops at the first hop.
        let faults = FaultPlan::none().with_outage(l01, 0.0, 1_000.0);
        let r = simulate(&topo, &routing, &tm, &[32, 32, 32], &config, &faults).unwrap();
        let f = r.flow(0, 2).unwrap();
        assert_eq!(f.delivered, 0);
        assert!(f.loss_ratio > 0.999);
    }

    #[test]
    fn zero_traffic_is_a_quiet_network() {
        let (topo, routing) = line3();
        let tm = TrafficMatrix::zeros(3);
        let config = SimConfig::default();
        let r = simulate(
            &topo,
            &routing,
            &tm,
            &[32, 32, 32],
            &config,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(r.total_created, 0);
        assert!(r.flows.is_empty());
        assert!(r.conservation_holds());
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let (topo, routing) = line3();
        let tm = TrafficMatrix::zeros(5); // wrong size
        let config = SimConfig::default();
        assert!(simulate(
            &topo,
            &routing,
            &tm,
            &[32, 32, 32],
            &config,
            &FaultPlan::none()
        )
        .is_err());
    }

    // ---------------------------------------------------------------- QoS

    use crate::qos::{QosSpec, SchedulingPolicy, TrafficProfile};

    /// Two flows sharing the 1→2 bottleneck on the 3-node line, with the
    /// shared link near saturation so scheduling order is visible.
    fn qos_line3(
        policy: SchedulingPolicy,
        profiles: Vec<TrafficProfile>,
        flow_classes: Vec<u8>,
        seed: u64,
    ) -> SimResult {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 4_000.0);
        tm.set(1, 2, 5_000.0);
        let config = SimConfig {
            duration_s: 600.0,
            warmup_s: 60.0,
            seed,
            ..SimConfig::default()
        };
        let spec = QosSpec {
            policy,
            class_profiles: profiles,
            flow_classes,
        };
        simulate_qos(
            &topo,
            &routing,
            &tm,
            &[32, 32, 32],
            &config,
            &FaultPlan::none(),
            &spec,
        )
        .unwrap()
    }

    #[test]
    fn fifo_qos_spec_reproduces_legacy_run_bitwise() {
        // A single-class FIFO/Poisson QoS spec is the legacy model; the QoS
        // event loop must reproduce the legacy loop bit for bit (same RNG
        // draw order, same event ordering, same float arithmetic).
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 8_000.0);
        tm.set(1, 2, 1_500.0);
        let config = SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            seed: 42,
            ..SimConfig::default()
        };
        let caps = [4, 4, 4];
        let legacy = simulate(&topo, &routing, &tm, &caps, &config, &FaultPlan::none()).unwrap();
        let spec = QosSpec::fifo(2);
        let qos = simulate_qos(
            &topo,
            &routing,
            &tm,
            &caps,
            &config,
            &FaultPlan::none(),
            &spec,
        )
        .unwrap();
        assert_eq!(
            legacy.flows, qos.flows,
            "per-flow stats must be bitwise equal"
        );
        assert_eq!(legacy.total_created, qos.total_created);
        assert_eq!(legacy.total_dropped, qos.total_dropped);
        for (a, b) in legacy.links.iter().zip(&qos.links) {
            assert_eq!(a.bits_sent, b.bits_sent);
            assert_eq!(a.drops, b.drops);
        }
        // And the QoS run reports its single class, pooling every flow.
        assert_eq!(qos.classes.len(), 1);
        assert_eq!(qos.classes[0].num_flows, 2);
    }

    #[test]
    fn strict_priority_protects_the_high_class() {
        let poisson2 = vec![TrafficProfile::Poisson, TrafficProfile::Poisson];
        // Flow (1,2) prioritized vs deprioritized; its bottleneck delay
        // must drop when it owns class 0.
        let prio = qos_line3(
            SchedulingPolicy::StrictPriority,
            poisson2.clone(),
            vec![1, 0],
            11,
        );
        let deprio = qos_line3(SchedulingPolicy::StrictPriority, poisson2, vec![0, 1], 11);
        let d_prio = prio.flow(1, 2).unwrap().mean_delay_s;
        let d_deprio = deprio.flow(1, 2).unwrap().mean_delay_s;
        assert!(
            d_prio < d_deprio * 0.8,
            "priority should cut flow (1,2) delay: {d_prio} vs {d_deprio}"
        );
        assert!(prio.conservation_holds() && deprio.conservation_holds());
        // Per-class stats mirror the per-flow ones (class 0 = flow (1,2)).
        assert_eq!(prio.classes[0].num_flows, 1);
        assert!((prio.classes[0].mean_delay_s - d_prio).abs() < 1e-12);
    }

    #[test]
    fn wfq_weights_shift_delay_between_classes() {
        let poisson2 = vec![TrafficProfile::Poisson, TrafficProfile::Poisson];
        let favored = qos_line3(
            SchedulingPolicy::Wfq {
                weights: vec![8.0, 1.0],
            },
            poisson2.clone(),
            vec![1, 0],
            13,
        );
        let even = qos_line3(
            SchedulingPolicy::Wfq {
                weights: vec![1.0, 1.0],
            },
            poisson2,
            vec![1, 0],
            13,
        );
        assert!(
            favored.classes[0].mean_delay_s < even.classes[0].mean_delay_s,
            "an 8:1 weight should beat 1:1 for class 0: {} vs {}",
            favored.classes[0].mean_delay_s,
            even.classes[0].mean_delay_s
        );
        assert!(favored.conservation_holds());
    }

    #[test]
    fn drr_quanta_shift_delay_between_classes() {
        let poisson2 = vec![TrafficProfile::Poisson, TrafficProfile::Poisson];
        let favored = qos_line3(
            SchedulingPolicy::Drr {
                quanta_bits: vec![8_000.0, 1_000.0],
            },
            poisson2.clone(),
            vec![1, 0],
            17,
        );
        let even = qos_line3(
            SchedulingPolicy::Drr {
                quanta_bits: vec![1_000.0, 1_000.0],
            },
            poisson2,
            vec![1, 0],
            17,
        );
        assert!(
            favored.classes[0].mean_delay_s < even.classes[0].mean_delay_s,
            "an 8:1 quantum should beat 1:1 for class 0: {} vs {}",
            favored.classes[0].mean_delay_s,
            even.classes[0].mean_delay_s
        );
        assert!(favored.conservation_holds());
    }

    #[test]
    fn on_off_traffic_is_burstier_than_poisson_at_equal_rate() {
        let onoff = qos_line3(
            SchedulingPolicy::Fifo,
            vec![
                TrafficProfile::OnOff {
                    on_mean_s: 1.0,
                    off_mean_s: 1.0,
                },
                TrafficProfile::Poisson,
            ],
            vec![0, 1],
            23,
        );
        let poisson = qos_line3(
            SchedulingPolicy::Fifo,
            vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
            vec![0, 1],
            23,
        );
        // Same mean rate (created counts within 15%)…
        let (c_on, c_po) = (onoff.total_created as f64, poisson.total_created as f64);
        assert!(
            (c_on / c_po - 1.0).abs() < 0.15,
            "on-off keeps the mean rate: {c_on} vs {c_po}"
        );
        // …but the on-off class sees strictly worse queueing (it transmits
        // at double rate during ON periods against a near-saturated link).
        assert!(
            onoff.classes[0].mean_delay_s > poisson.classes[0].mean_delay_s,
            "on-off should queue longer: {} vs {}",
            onoff.classes[0].mean_delay_s,
            poisson.classes[0].mean_delay_s
        );
        assert!(onoff.conservation_holds());
    }

    #[test]
    fn bursty_batches_keep_rate_and_raise_jitter() {
        let bursty = qos_line3(
            SchedulingPolicy::Fifo,
            vec![
                TrafficProfile::Bursty { batch_mean: 6.0 },
                TrafficProfile::Poisson,
            ],
            vec![0, 1],
            29,
        );
        let poisson = qos_line3(
            SchedulingPolicy::Fifo,
            vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
            vec![0, 1],
            29,
        );
        let (c_b, c_p) = (bursty.total_created as f64, poisson.total_created as f64);
        assert!(
            (c_b / c_p - 1.0).abs() < 0.2,
            "batching keeps the mean packet rate: {c_b} vs {c_p}"
        );
        assert!(
            bursty.classes[0].jitter_s > poisson.classes[0].jitter_s,
            "batch arrivals should raise delay variance: {} vs {}",
            bursty.classes[0].jitter_s,
            poisson.classes[0].jitter_s
        );
        assert!(bursty.conservation_holds());
    }

    #[test]
    fn multimodal_sizes_respect_the_configured_bit_rate() {
        // 90% small (500 bit) / 10% jumbo (6000 bit) packets: mean 1050
        // bits, so the packet rate rises to keep bits/s fixed.
        let mm = qos_line3(
            SchedulingPolicy::Fifo,
            vec![
                TrafficProfile::MultimodalSizes {
                    modes: vec![(500.0, 9.0), (6_000.0, 1.0)],
                },
                TrafficProfile::Poisson,
            ],
            vec![0, 1],
            31,
        );
        assert!(mm.conservation_holds());
        // The shared bottleneck still runs near its configured utilization.
        let util = mm.links[topo_bottleneck_index()].utilization;
        assert!(
            (0.7..=1.0).contains(&util),
            "bit rate preserved under multimodal sizes, util {util}"
        );
    }

    /// Index of the 1→2 link on the line3 topology.
    fn topo_bottleneck_index() -> usize {
        let (topo, _) = line3();
        topo.find_link(1, 2).unwrap()
    }

    #[test]
    fn qos_same_seed_is_bit_identical() {
        let spec_runs: Vec<SimResult> = (0..2)
            .map(|_| {
                qos_line3(
                    SchedulingPolicy::Wfq {
                        weights: vec![3.0, 1.0],
                    },
                    vec![
                        TrafficProfile::OnOff {
                            on_mean_s: 0.5,
                            off_mean_s: 0.5,
                        },
                        TrafficProfile::Bursty { batch_mean: 4.0 },
                    ],
                    vec![0, 1],
                    77,
                )
            })
            .collect();
        assert_eq!(spec_runs[0].flows, spec_runs[1].flows);
        assert_eq!(spec_runs[0].classes, spec_runs[1].classes);
        assert_eq!(spec_runs[0].total_created, spec_runs[1].total_created);
    }

    #[test]
    fn qos_rejects_bad_specs() {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 1_000.0);
        let config = SimConfig::default();
        // Wrong flow count.
        let spec = QosSpec::fifo(5);
        assert!(
            Simulation::with_qos(&topo, &routing, &tm, &config, &FaultPlan::none(), &spec).is_err()
        );
        // Class out of range.
        let spec = QosSpec {
            policy: SchedulingPolicy::StrictPriority,
            class_profiles: vec![TrafficProfile::Poisson],
            flow_classes: vec![3],
        };
        assert!(
            Simulation::with_qos(&topo, &routing, &tm, &config, &FaultPlan::none(), &spec).is_err()
        );
    }
}
