//! The simulation engine: event loop, flow sources, hop-by-hop forwarding.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::metrics::{FlowAccumulator, LinkStats, SimResult};
use crate::port::{Offer, OutputPort, Packet};
use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_tensor::Prng;

/// One traffic source: an ordered pair with positive demand and a routed path.
#[derive(Debug, Clone)]
struct Flow {
    src: usize,
    dst: usize,
    /// Packet arrival rate in packets per second.
    lambda: f64,
}

/// A fully specified simulation, ready to run.
///
/// Prefer the [`simulate`] convenience function; construct `Simulation`
/// directly when you need access to the flow table before running.
pub struct Simulation<'a> {
    topo: &'a Topology,
    routing: &'a Routing,
    config: &'a SimConfig,
    faults: &'a FaultPlan,
    flows: Vec<Flow>,
}

impl<'a> Simulation<'a> {
    /// Validate inputs and build the flow table.
    ///
    /// `queue_capacity_pkts` holds one waiting-room size per *node*; every
    /// output port of a node inherits the node's capacity (queue size is a
    /// node property — the feature the extended RouteNet models).
    pub fn new(
        topo: &'a Topology,
        routing: &'a Routing,
        traffic: &'a TrafficMatrix,
        config: &'a SimConfig,
        faults: &'a FaultPlan,
    ) -> Result<Self, String> {
        config.validate()?;
        if traffic.num_nodes() != topo.num_nodes() {
            return Err(format!(
                "traffic matrix covers {} nodes, topology has {}",
                traffic.num_nodes(),
                topo.num_nodes()
            ));
        }
        if routing.num_nodes() != topo.num_nodes() {
            return Err(format!(
                "routing covers {} nodes, topology has {}",
                routing.num_nodes(),
                topo.num_nodes()
            ));
        }
        let mut flows = Vec::new();
        for (s, d, _path) in routing.iter_paths() {
            let rate = traffic.rate(s, d);
            if rate > 0.0 {
                flows.push(Flow {
                    src: s,
                    dst: d,
                    lambda: rate / config.mean_packet_bits,
                });
            }
        }
        Ok(Self {
            topo,
            routing,
            config,
            faults,
            flows,
        })
    }

    /// `(src, dst)` of every flow, in simulation order.
    pub fn flow_pairs(&self) -> Vec<(usize, usize)> {
        self.flows.iter().map(|f| (f.src, f.dst)).collect()
    }

    /// Run to the configured horizon.
    ///
    /// `queue_capacity_pkts[n]` is the waiting-packet capacity at node `n`.
    pub fn run(&self, queue_capacity_pkts: &[usize]) -> SimResult {
        assert_eq!(
            queue_capacity_pkts.len(),
            self.topo.num_nodes(),
            "need one queue capacity per node"
        );
        let master = Prng::new(self.config.seed);
        // Independent streams: one per flow for arrivals/sizes, one for faults.
        let mut flow_rngs: Vec<Prng> = (0..self.flows.len())
            .map(|i| master.split(i as u64))
            .collect();
        let mut fault_rng = master.split(u64::MAX / 2);

        let mut ports: Vec<OutputPort> = self
            .topo
            .links()
            .iter()
            .map(|link| OutputPort::new(queue_capacity_pkts[link.src]))
            .collect();
        let mut accs: Vec<FlowAccumulator> = vec![FlowAccumulator::default(); self.flows.len()];
        let mut events = EventQueue::new();
        // Packets in propagation, stored in a slab with a free list.
        let mut in_flight: Vec<Option<Packet>> = Vec::new();
        let mut free_slots: Vec<usize> = Vec::new();

        // Paths are fetched once per flow: (link sequence, destination).
        let flow_paths: Vec<&rn_netgraph::Path> = self
            .flows
            .iter()
            .map(|f| {
                self.routing
                    .path(f.src, f.dst)
                    .expect("flow implies routed path")
            })
            .collect();

        // Prime each flow's first arrival.
        for (i, flow) in self.flows.iter().enumerate() {
            let t = flow_rngs[i].exponential(flow.lambda);
            if t < self.config.duration_s {
                events.schedule(t, EventKind::FlowArrival { flow: i });
            }
        }

        while let Some(ev) = events.pop() {
            if ev.time > self.config.duration_s {
                break;
            }
            match ev.kind {
                EventKind::FlowArrival { flow } => {
                    let spec = &self.flows[flow];
                    // Draw size (truncated exponential) and next arrival first,
                    // so the flow's RNG stream is consumed in a fixed order.
                    let size = flow_rngs[flow]
                        .exponential(1.0 / self.config.mean_packet_bits)
                        .min(self.config.max_packet_bits)
                        .max(1.0);
                    let next = ev.time + flow_rngs[flow].exponential(spec.lambda);
                    if next < self.config.duration_s {
                        events.schedule(next, EventKind::FlowArrival { flow });
                    }

                    accs[flow].created += 1;
                    let pkt = Packet {
                        flow,
                        size_bits: size,
                        created_at: ev.time,
                        hop: 0,
                    };
                    self.launch_on_next_hop(
                        pkt,
                        ev.time,
                        flow_paths[flow],
                        &mut ports,
                        &mut events,
                        &mut accs,
                    );
                }
                EventKind::Departure { link } => {
                    let (departed, next_in_service) = ports[link].complete_service();
                    if let Some(next) = next_in_service {
                        let cap = self.topo.link(link).capacity_bps;
                        events.schedule(
                            ev.time + next.size_bits / cap,
                            EventKind::Departure { link },
                        );
                    }

                    // Random hop loss (fault injection).
                    if self.faults.drop_chance > 0.0 && fault_rng.bernoulli(self.faults.drop_chance)
                    {
                        accs[departed.flow].dropped += 1;
                        continue;
                    }

                    let prop = self.topo.link(link).prop_delay_s;
                    if prop > 0.0 {
                        let slot = match free_slots.pop() {
                            Some(s) => {
                                in_flight[s] = Some(departed);
                                s
                            }
                            None => {
                                in_flight.push(Some(departed));
                                in_flight.len() - 1
                            }
                        };
                        events
                            .schedule(ev.time + prop, EventKind::HopArrival { link, packet: slot });
                    } else {
                        self.complete_hop(
                            departed,
                            ev.time,
                            &mut ports,
                            &mut events,
                            &mut accs,
                            &flow_paths,
                        );
                    }
                }
                EventKind::HopArrival { link: _, packet } => {
                    let pkt = in_flight[packet]
                        .take()
                        .expect("hop arrival for missing packet");
                    free_slots.push(packet);
                    self.complete_hop(
                        pkt,
                        ev.time,
                        &mut ports,
                        &mut events,
                        &mut accs,
                        &flow_paths,
                    );
                }
            }
        }

        // Finalize.
        let mut total_created = 0;
        let mut total_delivered = 0;
        let mut total_dropped = 0;
        for acc in &accs {
            total_created += acc.created;
            total_delivered += acc.delivered + acc.delivered_warmup;
            total_dropped += acc.dropped;
        }
        let links = ports
            .iter()
            .enumerate()
            .map(|(l, port)| LinkStats {
                bits_sent: port.bits_sent,
                drops: port.drops,
                utilization: port.bits_sent
                    / (self.topo.link(l).capacity_bps * self.config.duration_s),
            })
            .collect();
        SimResult {
            flows: accs.iter().map(FlowAccumulator::stats).collect(),
            flow_pairs: self.flow_pairs(),
            links,
            total_created,
            total_delivered,
            total_dropped,
            total_in_flight: total_created - total_delivered - total_dropped,
            duration_s: self.config.duration_s,
        }
    }

    /// A packet has fully arrived at the node at the end of `hop - 1` (or was
    /// just created at its source). Deliver it or queue it on the next hop.
    fn complete_hop(
        &self,
        mut pkt: Packet,
        now: f64,
        ports: &mut [OutputPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
        flow_paths: &[&rn_netgraph::Path],
    ) {
        pkt.hop += 1;
        let path = flow_paths[pkt.flow];
        if pkt.hop == path.links.len() {
            // Reached the destination node.
            if now >= self.config.warmup_s {
                accs[pkt.flow].record_delivery(now - pkt.created_at);
            } else {
                accs[pkt.flow].delivered_warmup += 1;
            }
        } else {
            self.launch_on_next_hop(pkt, now, path, ports, events, accs);
        }
    }

    /// Offer `pkt` to the output port of its next hop link.
    fn launch_on_next_hop(
        &self,
        pkt: Packet,
        now: f64,
        path: &rn_netgraph::Path,
        ports: &mut [OutputPort],
        events: &mut EventQueue,
        accs: &mut [FlowAccumulator],
    ) {
        let link = path.links[pkt.hop];
        if self.faults.link_down(link, now) {
            accs[pkt.flow].dropped += 1;
            return;
        }
        match ports[link].offer(pkt) {
            Offer::StartService => {
                let cap = self.topo.link(link).capacity_bps;
                events.schedule(now + pkt.size_bits / cap, EventKind::Departure { link });
            }
            Offer::Queued => {}
            Offer::Dropped => accs[pkt.flow].dropped += 1,
        }
    }
}

/// Run one simulation: the main entry point of this crate.
///
/// `queue_capacity_pkts[n]` is the waiting-packet capacity of every output
/// port at node `n`. See the crate docs for the full model.
pub fn simulate(
    topo: &Topology,
    routing: &Routing,
    traffic: &TrafficMatrix,
    queue_capacity_pkts: &[usize],
    config: &SimConfig,
    faults: &FaultPlan,
) -> Result<SimResult, String> {
    Ok(Simulation::new(topo, routing, traffic, config, faults)?.run(queue_capacity_pkts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_netgraph::topologies;

    fn line3() -> (Topology, Routing) {
        let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 10_000.0, 0.0);
        let routing = Routing::shortest_paths(&topo);
        (topo, routing)
    }

    fn run_line3(rate: f64, caps: &[usize], seed: u64) -> SimResult {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, rate);
        let config = SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            seed,
            ..SimConfig::default()
        };
        simulate(&topo, &routing, &tm, caps, &config, &FaultPlan::none()).unwrap()
    }

    #[test]
    fn packets_flow_end_to_end() {
        let r = run_line3(2_000.0, &[32, 32, 32], 1);
        let f = r.flow(0, 2).expect("flow exists");
        assert!(f.delivered > 100, "delivered {}", f.delivered);
        assert!(f.mean_delay_s > 0.0);
        assert!(r.conservation_holds());
    }

    #[test]
    fn delay_includes_both_hops() {
        // At low load delay ≈ 2 transmissions: 2 * size/capacity. The rate is
        // high enough (~200+ packets) that the sample mean of the exponential
        // packet sizes concentrates, keeping the test robust to RNG streams.
        let r = run_line3(500.0, &[32, 32, 32], 2);
        let f = r.flow(0, 2).unwrap();
        // mean size 1000 bits at 10kbps -> 0.1s per hop -> ~0.2s total
        assert!(
            (f.mean_delay_s - 0.2).abs() < 0.05,
            "mean delay {}",
            f.mean_delay_s
        );
        assert!(f.loss_ratio < 1e-3);
    }

    #[test]
    fn overload_causes_loss_with_tiny_queues() {
        // Offered 1.5x capacity with tiny buffers: heavy loss.
        let r = run_line3(15_000.0, &[1, 1, 1], 3);
        let f = r.flow(0, 2).unwrap();
        assert!(f.loss_ratio > 0.2, "loss {}", f.loss_ratio);
        assert!(r.conservation_holds());
    }

    #[test]
    fn bigger_queues_mean_fewer_drops_but_more_delay() {
        let tiny = run_line3(9_000.0, &[1, 1, 1], 4);
        let big = run_line3(9_000.0, &[64, 64, 64], 4);
        let ft = tiny.flow(0, 2).unwrap();
        let fb = big.flow(0, 2).unwrap();
        assert!(
            ft.loss_ratio > fb.loss_ratio,
            "tiny {} vs big {}",
            ft.loss_ratio,
            fb.loss_ratio
        );
        assert!(
            fb.mean_delay_s > ft.mean_delay_s,
            "big buffers queue longer"
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run_line3(8_000.0, &[4, 4, 4], 42);
        let b = run_line3(8_000.0, &[4, 4, 4], 42);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.total_created, b.total_created);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_line3(8_000.0, &[4, 4, 4], 1);
        let b = run_line3(8_000.0, &[4, 4, 4], 2);
        assert_ne!(a.total_created, b.total_created);
    }

    #[test]
    fn full_mesh_on_nsfnet_runs_clean() {
        let topo = topologies::nsfnet_default();
        let routing = Routing::shortest_paths(&topo);
        let mut rng = Prng::new(9);
        let tm = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.5);
        let config = SimConfig {
            duration_s: 200.0,
            warmup_s: 20.0,
            seed: 9,
            ..SimConfig::default()
        };
        let caps = vec![32; topo.num_nodes()];
        let r = simulate(&topo, &routing, &tm, &caps, &config, &FaultPlan::none()).unwrap();
        assert!(r.conservation_holds());
        assert_eq!(r.flows.len(), 14 * 13);
        assert!(r.mean_delay_s() > 0.0);
        // Utilization must stay physical.
        for l in &r.links {
            assert!(
                l.utilization >= 0.0 && l.utilization <= 1.0 + 1e-9,
                "util {}",
                l.utilization
            );
        }
    }

    #[test]
    fn propagation_delay_adds_to_latency() {
        let topo_fast = Topology::from_undirected_edges("fast", 2, &[(0, 1)], 10_000.0, 0.0);
        let topo_slow = Topology::from_undirected_edges("slow", 2, &[(0, 1)], 10_000.0, 0.25);
        let mut results = Vec::new();
        for topo in [&topo_fast, &topo_slow] {
            let routing = Routing::shortest_paths(topo);
            let mut tm = TrafficMatrix::zeros(2);
            tm.set(0, 1, 100.0);
            let config = SimConfig {
                duration_s: 300.0,
                warmup_s: 30.0,
                seed: 5,
                ..SimConfig::default()
            };
            let r = simulate(topo, &routing, &tm, &[32, 32], &config, &FaultPlan::none()).unwrap();
            results.push(r.flow(0, 1).unwrap().mean_delay_s);
        }
        let extra = results[1] - results[0];
        assert!((extra - 0.25).abs() < 0.02, "propagation delta {extra}");
    }

    #[test]
    fn drop_chance_causes_loss() {
        let (topo, routing) = line3();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 2_000.0);
        let config = SimConfig {
            duration_s: 300.0,
            warmup_s: 30.0,
            seed: 6,
            ..SimConfig::default()
        };
        let faults = FaultPlan::with_drop_chance(0.1);
        let r = simulate(&topo, &routing, &tm, &[32, 32, 32], &config, &faults).unwrap();
        let f = r.flow(0, 2).unwrap();
        // two hops, 10% per hop -> ~19% loss
        assert!((f.loss_ratio - 0.19).abs() < 0.05, "loss {}", f.loss_ratio);
        assert!(r.conservation_holds());
    }

    #[test]
    fn outage_kills_traffic_during_window() {
        let (topo, routing) = line3();
        let l01 = topo.find_link(0, 1).unwrap();
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(0, 2, 2_000.0);
        let config = SimConfig {
            duration_s: 200.0,
            warmup_s: 0.0,
            seed: 7,
            ..SimConfig::default()
        };
        // Link down for the whole run: everything drops at the first hop.
        let faults = FaultPlan::none().with_outage(l01, 0.0, 1_000.0);
        let r = simulate(&topo, &routing, &tm, &[32, 32, 32], &config, &faults).unwrap();
        let f = r.flow(0, 2).unwrap();
        assert_eq!(f.delivered, 0);
        assert!(f.loss_ratio > 0.999);
    }

    #[test]
    fn zero_traffic_is_a_quiet_network() {
        let (topo, routing) = line3();
        let tm = TrafficMatrix::zeros(3);
        let config = SimConfig::default();
        let r = simulate(
            &topo,
            &routing,
            &tm,
            &[32, 32, 32],
            &config,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(r.total_created, 0);
        assert!(r.flows.is_empty());
        assert!(r.conservation_holds());
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let (topo, routing) = line3();
        let tm = TrafficMatrix::zeros(5); // wrong size
        let config = SimConfig::default();
        assert!(simulate(
            &topo,
            &routing,
            &tm,
            &[32, 32, 32],
            &config,
            &FaultPlan::none()
        )
        .is_err());
    }
}
