//! Validation of the QoS simulator against closed-form queueing theory —
//! the per-class analogue of `theory_agreement.rs`.
//!
//! Setup: the 3-node line `0 — 1 — 2` with flows `(0,2)` and `(1,2)`
//! sharing the `1→2` bottleneck port. Flow `(1,2)` crosses *only* that
//! port, so its end-to-end delay is exactly one queue's sojourn time —
//! measurable against `rn_qtheory`'s per-class formulas with no multi-hop
//! corrections. By swapping which class flow `(1,2)` carries we observe
//! both the favored and the unfavored class at the same port.
//!
//! Tolerances: strict priority has an *exact* M/M/1 analysis (the transit
//! flow's arrivals at the bottleneck are Poisson by Burke's theorem, with a
//! mild Kleinrock correlation from carried-over packet sizes), so we hold
//! the simulator to 12%. WFQ/DRR are validated against the weighted-share
//! *approximation*, which at moderate load overestimates the underweighted
//! class (it assumes the favored class always consumes its share); the
//! documented tolerance there is 35%, backed by an exact directional
//! invariant — the per-class delays must bracket the pooled-FIFO delay in
//! the order the weights predict.

use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_netsim::{
    simulate_qos, FaultPlan, QosSpec, SchedulingPolicy, SimConfig, SimResult, TrafficProfile,
};
use rn_qtheory::{Mm1Priority, WfqApprox};

/// Port service rate: 10_000 bps links, 1_000-bit mean packets -> mu = 10/s.
const MU: f64 = 10.0;
/// Per-flow arrival rate in packets/s (3_000 bps / 1_000 bits).
const LAMBDA: f64 = 3.0;

/// Run the shared-bottleneck scenario; `flow12_class` is the class carried
/// by the single-hop flow `(1,2)` (the other flow gets the other class).
fn bottleneck_run(policy: SchedulingPolicy, flow12_class: u8, seed: u64) -> SimResult {
    let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 10_000.0, 0.0);
    let routing = Routing::shortest_paths(&topo);
    let mut tm = TrafficMatrix::zeros(3);
    tm.set(0, 2, LAMBDA * 1_000.0);
    tm.set(1, 2, LAMBDA * 1_000.0);
    let config = SimConfig {
        duration_s: 20_000.0,
        warmup_s: 2_000.0,
        mean_packet_bits: 1_000.0,
        // Effectively untruncated sizes so the exponential-service formulas
        // apply cleanly (same choice as theory_agreement.rs).
        max_packet_bits: 100_000.0,
        standard_queue_pkts: 10_000,
        seed,
    };
    // Flow order is routing order: (0,2) then (1,2).
    let spec = QosSpec {
        policy,
        class_profiles: vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
        flow_classes: vec![1 - flow12_class, flow12_class],
    };
    simulate_qos(
        &topo,
        &routing,
        &tm,
        &[10_000, 10_000, 10_000],
        &config,
        &FaultPlan::none(),
        &spec,
    )
    .unwrap()
}

/// Measured sojourn of the single-hop flow `(1,2)`.
fn flow12_delay(r: &SimResult) -> f64 {
    let f = r.flow(1, 2).unwrap();
    assert!(f.delivered > 10_000, "need statistics, got {}", f.delivered);
    f.mean_delay_s
}

fn rel_err(measured: f64, theory: f64) -> f64 {
    (measured - theory).abs() / theory
}

#[test]
fn strict_priority_matches_nonpreemptive_mm1_theory() {
    // Both classes offered lambda = 3 on a mu = 10 server: sigma_1 = 0.6.
    let theory = Mm1Priority::new(vec![LAMBDA, LAMBDA], MU);
    for class in [0u8, 1u8] {
        let r = bottleneck_run(SchedulingPolicy::StrictPriority, class, 1000 + class as u64);
        let sim = flow12_delay(&r);
        let t = theory.nonpreemptive_sojourn_s(class as usize);
        assert!(
            rel_err(sim, t) < 0.12,
            "class {class}: sim {sim:.4}s vs non-preemptive theory {t:.4}s \
             (rel err {:.3})",
            rel_err(sim, t)
        );
    }
    // And the ordering the formulas predict is visible in the simulator.
    let hi = flow12_delay(&bottleneck_run(SchedulingPolicy::StrictPriority, 0, 7));
    let lo = flow12_delay(&bottleneck_run(SchedulingPolicy::StrictPriority, 1, 7));
    assert!(hi < lo, "high class must be faster: {hi} vs {lo}");
}

/// Shared body for WFQ/DRR: check both classes against the weighted-share
/// approximation (documented 35% tolerance) and the exact FIFO bracket.
fn check_weighted_policy(make_policy: impl Fn() -> SchedulingPolicy, seed_base: u64) {
    let approx = WfqApprox::new(vec![LAMBDA, LAMBDA], MU, &[3.0, 1.0]);
    let fifo_pooled = 1.0 / (MU - 2.0 * LAMBDA);
    let mut sims = [0.0f64; 2];
    for class in [0u8, 1u8] {
        let r = bottleneck_run(make_policy(), class, seed_base + class as u64);
        let sim = flow12_delay(&r);
        sims[class as usize] = sim;
        let t = approx.mean_sojourn_s(class as usize);
        assert!(
            rel_err(sim, t) < 0.35,
            "class {class}: sim {sim:.4}s vs weighted-share approx {t:.4}s \
             (rel err {:.3})",
            rel_err(sim, t)
        );
    }
    // Exact directional invariant: the favored class beats pooled FIFO, the
    // underweighted class pays for it.
    assert!(
        sims[0] < fifo_pooled && fifo_pooled < sims[1],
        "per-class delays must bracket pooled FIFO {fifo_pooled:.4}: {sims:?}"
    );
}

#[test]
fn wfq_matches_weighted_share_approximation() {
    check_weighted_policy(
        || SchedulingPolicy::Wfq {
            weights: vec![3.0, 1.0],
        },
        2000,
    );
}

#[test]
fn drr_tracks_the_wfq_approximation_with_quantum_weights() {
    check_weighted_policy(
        || SchedulingPolicy::Drr {
            quanta_bits: vec![3_000.0, 1_000.0],
        },
        3000,
    );
}

#[test]
fn scheduling_conserves_work_across_classes() {
    // The delivered-weighted mean delay across classes must be (nearly)
    // scheduler-independent at the bottleneck — scheduling redistributes
    // waiting between classes, it cannot destroy it.
    let mut means = Vec::new();
    for policy in [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::StrictPriority,
        SchedulingPolicy::Wfq {
            weights: vec![3.0, 1.0],
        },
        SchedulingPolicy::Drr {
            quanta_bits: vec![3_000.0, 1_000.0],
        },
    ] {
        let r = bottleneck_run(policy, 0, 4242);
        assert!(r.conservation_holds());
        means.push(r.mean_delay_s());
    }
    // All runs share arrivals (same seed, same draw order), so the pooled
    // mean only moves through second-order scheduling effects.
    let base = means[0];
    for (i, m) in means.iter().enumerate() {
        assert!(
            (m - base).abs() / base < 0.10,
            "policy {i}: pooled mean {m} strays from FIFO {base}"
        );
    }
}
