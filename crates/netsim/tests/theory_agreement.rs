//! The simulator must agree with closed-form queueing theory on scenarios
//! where theory is exact: a single M/M/1(/K) queue. This is the strongest
//! correctness evidence a packet-level simulator can offer.

use rn_netgraph::{Routing, Topology, TrafficMatrix};
use rn_netsim::{simulate, FaultPlan, SimConfig};
use rn_qtheory::{Mm1, Mm1k};

/// One duplex link; a single flow 0 -> 1 turns the port at node 0 into a
/// textbook single queue. Exponential sizes on a fixed-capacity link give
/// exponential service times.
fn single_queue_sim(rate_bps: f64, waiting_room: usize, seed: u64) -> rn_netsim::SimResult {
    let topo = Topology::from_undirected_edges("pair", 2, &[(0, 1)], 10_000.0, 0.0);
    let routing = Routing::shortest_paths(&topo);
    let mut tm = TrafficMatrix::zeros(2);
    tm.set(0, 1, rate_bps);
    let config = SimConfig {
        duration_s: 30_000.0,
        warmup_s: 2_000.0,
        mean_packet_bits: 1_000.0,
        // Effectively untruncated exponential sizes so service is ~exponential.
        max_packet_bits: 100_000.0,
        standard_queue_pkts: 32,
        seed,
    };
    simulate(
        &topo,
        &routing,
        &tm,
        &[waiting_room, waiting_room],
        &config,
        &FaultPlan::none(),
    )
    .unwrap()
}

#[test]
fn mm1_mean_sojourn_matches_theory() {
    // λ = 5 pkt/s (5000 bps / 1000 bit), μ = 10 pkt/s -> W = 1/(μ-λ) = 0.2 s
    let result = single_queue_sim(5_000.0, 1_000_000, 1);
    let f = result.flow(0, 1).unwrap();
    let theory = Mm1::new(5.0, 10.0).mean_sojourn_s();
    let rel_err = (f.mean_delay_s - theory).abs() / theory;
    assert!(
        rel_err < 0.05,
        "M/M/1 sojourn: sim {} vs theory {theory} (rel err {rel_err:.3})",
        f.mean_delay_s
    );
    assert!(f.loss_ratio < 1e-6, "infinite-buffer queue must not drop");
}

#[test]
fn mm1_heavier_load_matches_theory_too() {
    // ρ = 0.8 -> W = 1/(10-8) = 0.5 s
    let result = single_queue_sim(8_000.0, 1_000_000, 2);
    let f = result.flow(0, 1).unwrap();
    let theory = Mm1::new(8.0, 10.0).mean_sojourn_s();
    let rel_err = (f.mean_delay_s - theory).abs() / theory;
    assert!(
        rel_err < 0.10,
        "M/M/1 at rho=0.8: sim {} vs theory {theory} (rel err {rel_err:.3})",
        f.mean_delay_s
    );
}

#[test]
fn mm1k_blocking_probability_matches_theory() {
    // waiting room 1 + server = system capacity K = 2, ρ = 0.9
    let result = single_queue_sim(9_000.0, 1, 3);
    let f = result.flow(0, 1).unwrap();
    let theory = Mm1k::new(9.0, 10.0, 2).blocking_probability();
    let rel_err = (f.loss_ratio - theory).abs() / theory;
    assert!(
        rel_err < 0.08,
        "M/M/1/2 blocking: sim {} vs theory {theory} (rel err {rel_err:.3})",
        f.loss_ratio
    );
}

#[test]
fn mm1k_sojourn_matches_theory() {
    let result = single_queue_sim(9_000.0, 1, 4);
    let f = result.flow(0, 1).unwrap();
    let theory = Mm1k::new(9.0, 10.0, 2).mean_sojourn_s();
    let rel_err = (f.mean_delay_s - theory).abs() / theory;
    assert!(
        rel_err < 0.08,
        "M/M/1/2 sojourn: sim {} vs theory {theory} (rel err {rel_err:.3})",
        f.mean_delay_s
    );
}

#[test]
fn mm1k_overload_throughput_saturates_at_mu() {
    // Offered 2x capacity: throughput ≈ μ (1 - p_0-ish), never above capacity.
    let result = single_queue_sim(20_000.0, 4, 5);
    let f = result.flow(0, 1).unwrap();
    let delivered_rate = f.delivered as f64 / (30_000.0 - 2_000.0);
    assert!(
        delivered_rate < 10.5,
        "throughput {delivered_rate} pkt/s exceeds service rate"
    );
    assert!(delivered_rate > 9.0, "server should stay nearly saturated");
    let theory = Mm1k::new(20.0, 10.0, 5); // waiting 4 + server
    let rel = (f.loss_ratio - theory.blocking_probability()).abs() / theory.blocking_probability();
    assert!(
        rel < 0.08,
        "overload blocking: sim {} vs theory {}",
        f.loss_ratio,
        theory.blocking_probability()
    );
}

#[test]
fn buffer_sweep_tracks_mm1k_delay_curve() {
    // As the waiting room grows, simulated delay must follow the M/M/1/K
    // sojourn curve point by point — not just qualitatively.
    for (waiting, seed) in [(1usize, 10u64), (2, 11), (4, 12), (8, 13)] {
        let result = single_queue_sim(9_000.0, waiting, seed);
        let f = result.flow(0, 1).unwrap();
        let theory = Mm1k::new(9.0, 10.0, waiting as u32 + 1).mean_sojourn_s();
        let rel_err = (f.mean_delay_s - theory).abs() / theory;
        assert!(
            rel_err < 0.10,
            "waiting={waiting}: sim {} vs theory {theory} (rel err {rel_err:.3})",
            f.mean_delay_s
        );
    }
}
