//! Property-based simulator invariants: conservation, determinism and
//! physical bounds must hold on *random* connected topologies and traffic —
//! not just the canonical scenarios.

use proptest::prelude::*;
use rn_netgraph::{generators, Routing, TrafficMatrix};
use rn_netsim::{simulate, FaultPlan, SimConfig};
use rn_tensor::Prng;

/// A random connected topology + routing + traffic + queue assignment.
fn random_scenario(
    seed: u64,
    num_nodes: usize,
    edge_p: f64,
    util: f64,
) -> (rn_netgraph::Topology, Routing, TrafficMatrix, Vec<usize>) {
    let mut rng = Prng::new(seed);
    let topo = generators::erdos_renyi_connected(num_nodes, edge_p, 10_000.0, &mut rng).unwrap();
    let routing = Routing::randomized(&topo, &mut rng);
    let traffic = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, util);
    let caps: Vec<usize> = (0..num_nodes)
        .map(|_| if rng.bernoulli(0.5) { 1 } else { 16 })
        .collect();
    (topo, routing, traffic, caps)
}

fn quick_sim(seed: u64) -> SimConfig {
    SimConfig {
        duration_s: 60.0,
        warmup_s: 10.0,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_holds_on_random_networks(
        seed in any::<u64>(),
        num_nodes in 3usize..9,
        edge_p in 0.0f64..0.5,
        util in 0.2f64..1.3,
    ) {
        let (topo, routing, traffic, caps) = random_scenario(seed, num_nodes, edge_p, util);
        let result = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        prop_assert!(result.conservation_holds(),
            "created {} != delivered {} + dropped {} + in-flight {}",
            result.total_created, result.total_delivered, result.total_dropped, result.total_in_flight);
    }

    #[test]
    fn delays_respect_physical_lower_bound(
        seed in any::<u64>(),
        num_nodes in 3usize..8,
        util in 0.1f64..0.9,
    ) {
        // No packet can beat hop_count * min_transmission_time.
        let (topo, routing, traffic, caps) = random_scenario(seed, num_nodes, 0.2, util);
        let result = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        for (i, f) in result.flows.iter().enumerate() {
            if f.delivered == 0 {
                continue;
            }
            let (s, d) = result.flow_pairs[i];
            let hops = routing.path(s, d).unwrap().hop_count() as f64;
            // Minimum size is 1 bit; transmission of the *mean* packet takes
            // mean_bits/capacity. The mean delay must exceed hops * (1 bit
            // transmission), a very loose but strictly physical bound.
            let min_delay = hops * (1.0 / 10_000.0);
            prop_assert!(f.mean_delay_s >= min_delay,
                "flow {s}->{d}: mean delay {} below physical bound {min_delay}", f.mean_delay_s);
        }
    }

    #[test]
    fn utilization_never_exceeds_one(
        seed in any::<u64>(),
        util in 0.5f64..2.0,
    ) {
        let (topo, routing, traffic, caps) = random_scenario(seed, 6, 0.3, util);
        let result = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        for (l, stats) in result.links.iter().enumerate() {
            prop_assert!(stats.utilization <= 1.0 + 1e-9, "link {l}: util {}", stats.utilization);
            prop_assert!(stats.utilization >= 0.0);
        }
    }

    #[test]
    fn determinism_on_random_scenarios(seed in any::<u64>()) {
        let (topo, routing, traffic, caps) = random_scenario(seed, 5, 0.3, 0.8);
        let a = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        let b = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        prop_assert_eq!(a.flows, b.flows);
        prop_assert_eq!(a.total_created, b.total_created);
    }

    #[test]
    fn loss_ratios_are_probabilities(
        seed in any::<u64>(),
        util in 0.3f64..2.0,
        drop_chance in 0.0f64..0.3,
    ) {
        let (topo, routing, traffic, caps) = random_scenario(seed, 6, 0.2, util);
        let faults = FaultPlan::with_drop_chance(drop_chance);
        let result = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &faults).unwrap();
        for f in &result.flows {
            prop_assert!((0.0..=1.0).contains(&f.loss_ratio));
            prop_assert!(f.jitter_s >= 0.0);
            prop_assert!(f.mean_delay_s >= 0.0);
        }
        prop_assert!(result.conservation_holds());
    }

    #[test]
    fn more_offered_load_never_reduces_created_packets(seed in 0u64..1000) {
        let (topo, routing, traffic, caps) = random_scenario(seed, 5, 0.3, 0.4);
        let result_lo = simulate(&topo, &routing, &traffic, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        // Double every rate: packet creation is per-flow Poisson, so the
        // expected created count doubles; with the same seed the streams
        // differ, so compare loosely.
        let mut heavier = TrafficMatrix::zeros(topo.num_nodes());
        for s in 0..topo.num_nodes() {
            for d in 0..topo.num_nodes() {
                if s != d {
                    heavier.set(s, d, traffic.rate(s, d) * 2.0);
                }
            }
        }
        let result_hi = simulate(&topo, &routing, &heavier, &caps, &quick_sim(seed), &FaultPlan::none()).unwrap();
        prop_assert!(result_hi.total_created as f64 > 1.5 * result_lo.total_created as f64,
            "doubling rates should roughly double creations: {} vs {}",
            result_hi.total_created, result_lo.total_created);
    }
}
