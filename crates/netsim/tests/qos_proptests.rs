//! Property-based scheduler invariants for the multi-queue QoS port and the
//! QoS simulation as a whole:
//!
//! - **Work conservation**: an idle port never has waiting packets, under
//!   every policy and any interleaving of offers and completions.
//! - **Strict-priority ordering**: a higher class (lower index) never waits
//!   while a lower class enters service.
//! - **DRR quantum fairness**: over a continuously backlogged interval, the
//!   normalized service `bits_c / quantum_c` of any two classes differs by
//!   at most `2 + max_size/q_c + max_size/q_d` (the Shreedhar–Varghese
//!   deficit bound plus one cut-off round).
//! - **Counter conservation**: per class, `admitted = sent + waiting +
//!   in-service`, and `offered = admitted + dropped` — for random event
//!   scripts at the port, and end to end (`created = delivered + dropped +
//!   in-flight`, per-class sums matching flow sums) for random scenarios
//!   and seeds at the simulation level.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rn_netgraph::{generators, Routing, TrafficMatrix};
use rn_netsim::port::{Packet, SchedPort};
use rn_netsim::{simulate_qos, FaultPlan, QosSpec, SchedulingPolicy, SimConfig, TrafficProfile};
use rn_tensor::Prng;

fn pkt(class: u8, size_bits: f64, seq: usize) -> Packet {
    Packet {
        flow: 0,
        class,
        size_bits,
        // Monotone stand-in for arrival time (the port only compares them).
        created_at: seq as f64,
        hop: 0,
    }
}

/// One of the four policies, picked by index; weights/quanta derive from a
/// seeded RNG so the proptest cases cover asymmetric configurations.
fn policy_from(idx: u32, num_classes: usize, seed: u64) -> SchedulingPolicy {
    let mut rng = Prng::new(seed);
    match idx % 4 {
        0 => SchedulingPolicy::Fifo,
        1 => SchedulingPolicy::StrictPriority,
        2 => SchedulingPolicy::Wfq {
            weights: (0..num_classes)
                .map(|_| rng.uniform_range(0.5, 8.0) as f64)
                .collect(),
        },
        _ => SchedulingPolicy::Drr {
            quanta_bits: (0..num_classes)
                .map(|_| rng.uniform_range(500.0, 4_000.0) as f64)
                .collect(),
        },
    }
}

/// A random per-flow QoS spec over `num_flows` flows.
fn random_spec(num_flows: usize, policy_idx: u32, num_classes: usize, seed: u64) -> QosSpec {
    let mut rng = Prng::new(seed ^ 0x9e37_79b9);
    let profiles = (0..num_classes)
        .map(|c| match (seed as usize + c) % 4 {
            0 => TrafficProfile::Poisson,
            1 => TrafficProfile::OnOff {
                on_mean_s: rng.uniform_range(0.5, 3.0) as f64,
                off_mean_s: rng.uniform_range(0.5, 3.0) as f64,
            },
            2 => TrafficProfile::Bursty {
                batch_mean: rng.uniform_range(1.5, 5.0) as f64,
            },
            _ => TrafficProfile::MultimodalSizes {
                modes: vec![(400.0, 0.6), (4_000.0, 0.4)],
            },
        })
        .collect();
    QosSpec {
        policy: policy_from(policy_idx, num_classes, seed),
        class_profiles: profiles,
        flow_classes: (0..num_flows)
            .map(|_| rng.int_range(0, num_classes as u64) as u8)
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Work conservation + counter conservation under random event scripts:
    /// drive a port with a random interleaving of offers and service
    /// completions and check the invariants after every single event.
    #[test]
    fn sched_port_is_work_conserving_and_conserves_packets(
        policy_idx in 0u32..4,
        num_classes in 1usize..5,
        capacity in 0usize..12,
        seed in any::<u64>(),
        script in pvec((any::<bool>(), 0u32..5, 1.0f64..5_000.0), 1..200),
    ) {
        let policy = policy_from(policy_idx, num_classes, seed);
        let mut port = SchedPort::new(num_classes, capacity, &policy);
        let mut offered = vec![0u64; num_classes];
        for (seq, &(is_offer, class, size)) in script.iter().enumerate() {
            if is_offer || !port.busy() {
                let c = class as usize % num_classes;
                offered[c] += 1;
                port.offer(pkt(c as u8, size, seq));
            } else {
                port.complete_service();
            }
            // Work conservation: the server never idles with work waiting.
            prop_assert!(port.busy() || port.backlog() == 0,
                "idle port with {} waiting packets", port.backlog());
            // Per-class counter conservation at every step.
            for (c, &offered_c) in offered.iter().enumerate() {
                let in_service = u64::from(port.in_service_class() == Some(c as u8));
                prop_assert_eq!(
                    port.class_admitted[c],
                    port.class_sent_pkts[c] + port.class_backlog(c) as u64 + in_service,
                    "class {} admitted != sent + waiting + in-service", c);
                prop_assert_eq!(offered_c, port.class_admitted[c] + port.class_dropped[c],
                    "class {} offered != admitted + dropped", c);
            }
            // The shared waiting budget is honored.
            prop_assert!(port.backlog() <= capacity);
        }
    }

    /// Strict priority: the packet entering service always comes from the
    /// lowest-indexed non-empty class — a higher-class packet never waits
    /// behind a lower-class one at the same port.
    #[test]
    fn strict_priority_never_serves_past_a_higher_class(
        num_classes in 2usize..5,
        script in pvec((any::<bool>(), 0u32..5, 1.0f64..5_000.0), 1..200),
    ) {
        let mut port = SchedPort::new(num_classes, 16, &SchedulingPolicy::StrictPriority);
        for (seq, &(is_offer, class, size)) in script.iter().enumerate() {
            if is_offer || !port.busy() {
                port.offer(pkt((class as usize % num_classes) as u8, size, seq));
            } else {
                let best_waiting = (0..num_classes).find(|&c| port.class_backlog(c) > 0);
                let (_, next) = port.complete_service();
                if let Some(expect) = best_waiting {
                    prop_assert_eq!(next.map(|p| p.class), Some(expect as u8),
                        "strict priority must serve class {} next", expect);
                }
            }
        }
    }

    /// DRR fairness: with every class continuously backlogged, normalized
    /// service is balanced within the deficit-round bound.
    #[test]
    fn drr_fairness_bound_on_backlogged_port(
        num_classes in 2usize..4,
        seed in any::<u64>(),
        completions in 50usize..200,
    ) {
        let mut rng = Prng::new(seed);
        let quanta: Vec<f64> = (0..num_classes)
            .map(|_| rng.uniform_range(500.0, 4_000.0) as f64)
            .collect();
        let max_size = 2_000.0f64;
        let mut port = SchedPort::new(
            num_classes,
            4 * completions,
            &SchedulingPolicy::Drr { quanta_bits: quanta.clone() },
        );
        // Pre-load deep backlogs so every class stays backlogged throughout.
        let mut seq = 0;
        for _ in 0..(2 * completions) {
            for c in 0..num_classes {
                port.offer(pkt(c as u8, rng.uniform_range(1.0, max_size as f32) as f64, seq));
                seq += 1;
            }
        }
        let mut bits = vec![0.0f64; num_classes];
        // Skip the warm-up packet that entered service before backlogs built.
        port.complete_service();
        for _ in 0..completions {
            let (departed, _) = port.complete_service();
            bits[departed.class as usize] += departed.size_bits;
        }
        for c in 0..num_classes {
            prop_assert!(port.class_backlog(c) > 0, "class {} drained — raise backlog", c);
            for d in (c + 1)..num_classes {
                let diff = (bits[c] / quanta[c] - bits[d] / quanta[d]).abs();
                let bound = 2.0 + max_size / quanta[c] + max_size / quanta[d];
                prop_assert!(diff <= bound,
                    "DRR fairness: |{:.2} - {:.2}| = {:.2} > bound {:.2} (quanta {:?})",
                    bits[c] / quanta[c], bits[d] / quanta[d], diff, bound, &quanta);
            }
        }
    }

    /// End-to-end conservation on random QoS scenarios: every created packet
    /// is delivered, dropped, or in flight, per-class sums match per-flow
    /// sums, and the same seed reproduces bit-identical results.
    #[test]
    fn qos_simulation_conserves_packets_across_seeds(
        seed in any::<u64>(),
        num_nodes in 3usize..8,
        util in 0.2f64..1.2,
        policy_idx in 0u32..4,
        num_classes in 1usize..4,
    ) {
        let mut rng = Prng::new(seed);
        let topo = generators::erdos_renyi_connected(num_nodes, 0.3, 10_000.0, &mut rng).unwrap();
        let routing = Routing::randomized(&topo, &mut rng);
        let traffic = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, util);
        let caps: Vec<usize> = (0..num_nodes).map(|_| if rng.bernoulli(0.5) { 1 } else { 16 }).collect();
        let config = SimConfig { duration_s: 60.0, warmup_s: 10.0, seed, ..SimConfig::default() };
        let num_flows = (0..num_nodes).flat_map(|s| (0..num_nodes).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && traffic.rate(s, d) > 0.0)
            .count();
        if num_flows == 0 {
            continue;
        }
        let spec = random_spec(num_flows, policy_idx, num_classes, seed);
        let run = |s: u64| {
            let cfg = SimConfig { seed: s, ..config };
            simulate_qos(&topo, &routing, &traffic, &caps, &cfg, &FaultPlan::none(), &spec).unwrap()
        };
        let r = run(seed);
        prop_assert!(r.conservation_holds(),
            "created {} != delivered {} + dropped {} + in-flight {}",
            r.total_created, r.total_delivered, r.total_dropped, r.total_in_flight);
        // Per-class pooled counters must match the per-flow totals exactly.
        prop_assert_eq!(r.classes.len(), spec.num_classes());
        let class_delivered: u64 = r.classes.iter().map(|c| c.delivered).sum();
        let class_dropped: u64 = r.classes.iter().map(|c| c.dropped).sum();
        let flow_delivered: u64 = r.flows.iter().map(|f| f.delivered).sum();
        let flow_dropped: u64 = r.flows.iter().map(|f| f.dropped).sum();
        prop_assert_eq!(class_delivered, flow_delivered);
        prop_assert_eq!(class_dropped, flow_dropped);
        prop_assert_eq!(r.classes.iter().map(|c| c.num_flows).sum::<usize>(), r.flows.len());
        // Same seed, same bits; different seed still conserves.
        let again = run(seed);
        prop_assert_eq!(&r.flows, &again.flows);
        prop_assert_eq!(&r.classes, &again.classes);
        let other = run(seed ^ 0xdead_beef);
        prop_assert!(other.conservation_holds());
    }
}
