//! Serving quickstart: stand up the concurrent inference service, drive it
//! in-process and over TCP, hot-swap the model, read the metrics.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use rn_serve::loadgen::{demo_scenarios, Client};
use rn_serve::{Request, Response, ServeConfig, Service, TcpServer};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};

fn main() {
    // 1. A model. Real deployments load one trained with `train_extended`
    //    via `routenet::persist::load_model`; the demo fits preprocessing on
    //    freshly generated scenarios and serves random weights.
    let (topology, samples) = demo_scenarios("nsfnet", 3, 60.0, 7).expect("scenarios");
    let ds = rn_dataset::Dataset { topology, samples };
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 32,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);
    let swap_in = {
        let mut m = ExtendedRouteNet::new(ModelConfig {
            state_dim: 16,
            mp_iterations: 4,
            readout_hidden: 32,
            seed: 99,
            ..ModelConfig::default()
        });
        m.fit_preprocessing(&ds, 5);
        m
    };

    // 2. Start the service: admission queue, dynamic batcher, worker pool.
    let service = Service::start(model, ServeConfig::default());
    let handle = service.handle();

    // 3. In-process predictions: plans flow through the shared plan cache,
    //    requests through the dynamic batcher.
    let (delays, fingerprint) = handle.predict_sample(&ds.samples[0]).expect("predict");
    println!(
        "in-process: {} paths predicted, first delay {:.6}s, fingerprint {fingerprint:#018x}",
        delays.len(),
        delays[0]
    );
    let again = handle.predict_cached(fingerprint).expect("cached predict");
    assert_eq!(delays, again, "cache hit returns identical predictions");

    // 4. The same service over TCP (JSONL): register once, query by
    //    fingerprint from then on.
    let server = TcpServer::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    println!("tcp: listening on {addr}");
    let mut client = Client::connect(&addr).expect("connect");
    let plan_ref = client.register(&ds.samples[1]).expect("register");
    match client
        .round_trip(&Request::Cached {
            plan: plan_ref,
            deadline_ms: None,
        })
        .expect("cached request")
    {
        Response::Delays { delays_s, .. } => {
            println!("tcp: {} delays, first {:.6}s", delays_s.len(), delays_s[0])
        }
        other => panic!("unexpected response {other:?}"),
    }

    // 5. Hot-swap the model under load; in-flight batches finish on the old
    //    version, later requests see the new one.
    let version = handle.swap_model(swap_in);
    println!("hot-swapped to model version {version}");

    // 6. Service metrics: throughput, latency percentiles, batch occupancy,
    //    cache hit rate — plus worker count / version / uptime for
    //    dashboards that only speak the Metrics reply.
    let m = handle.metrics();
    println!(
        "metrics: {} completed, p50 {:.2}ms, occupancy {:.2}, cache hit rate {:.2}",
        m.completed, m.latency_p50_ms, m.mean_batch_occupancy, m.cache_hit_rate
    );
    println!(
        "server: {} workers, model v{}, up {:.1}s",
        m.workers, m.model_version, m.uptime_s
    );

    // 7. With RN_TRACE=1 the snapshot also carries the request-lifecycle
    //    stage breakdown (queue_wait / batch_assembly / compose / forward /
    //    reply); print it and mirror the full snapshot to one JSON line
    //    (RN_TRACE_SERVE_OUT, default serve_metrics.jsonl) for dashboards
    //    and CI artifacts.
    for s in &m.stage_latency {
        println!(
            "stage {:>14}: n {:>4}  p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms  total {:.3}ms",
            s.name, s.count, s.p50_ms, s.p95_ms, s.p99_ms, s.total_ms
        );
    }
    if rn_trace::enabled() {
        let path = std::env::var("RN_TRACE_SERVE_OUT")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .unwrap_or_else(|| "serve_metrics.jsonl".into());
        let line = serde_json::to_string(&m).expect("snapshot serializes");
        std::fs::write(&path, line + "\n").expect("write metrics jsonl");
        println!("traced metrics snapshot written to {path}");
    }

    server.stop();
    service.shutdown();
}
