//! Quickstart: the whole pipeline in one page.
//!
//! Simulates a small network to build a dataset, trains the extended RouteNet
//! on it, and compares its delay predictions against the packet-level
//! simulator's ground truth.
//!
//! Run: `cargo run --release --example quickstart`

use rn_dataset::{generate, train_test_split, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_tensor::Prng;
use routenet::model::PathPredictor;
use routenet::{evaluate, train, ExtendedRouteNet, ModelConfig, TrainConfig};

fn main() {
    // 1. A topology: 5 forwarding devices, 12 directed links.
    let topo = topologies::toy5();
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.num_nodes(),
        topo.num_links()
    );

    // 2. Ground truth from the packet-level simulator: each sample has its
    //    own routing, traffic matrix and queue-size assignment (some devices
    //    buffer 32 packets, some only 1 — the feature the model must learn).
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 300.0,
            warmup_s: 30.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    println!("simulating 24 scenarios ...");
    let dataset = generate(&topo, &gen_config, 7, 24);
    let (train_set, test_set) = train_test_split(dataset, 0.75, &mut Prng::new(1));

    // 3. Train the extended RouteNet (node entities see the queue sizes).
    let model_config = ModelConfig {
        state_dim: 8,
        mp_iterations: 3,
        readout_hidden: 16,
        ..ModelConfig::default()
    };
    let train_config = TrainConfig {
        epochs: 15,
        batch_size: 4,
        verbose: true,
        ..TrainConfig::default()
    };
    let mut model = ExtendedRouteNet::new(model_config);
    println!("training on {} scenarios ...", train_set.len());
    let history = train(&mut model, &train_set, None, &train_config);
    println!("final training loss: {:.4}", history.final_train_loss());

    // 4. Evaluate on held-out scenarios.
    let report = evaluate(&model, &test_set, topo.name.as_str(), 10);
    println!("\n{}", report.summary_line());

    // 5. Inspect a few individual predictions.
    let sample = &test_set.samples[0];
    let plan = model.plan(sample);
    let predictions = model.predict(&plan);
    println!("\npath            predicted    simulated");
    for (&(s, d), (&pred, target)) in plan
        .pairs
        .iter()
        .zip(predictions.iter().zip(&sample.targets))
        .take(8)
    {
        println!(
            "{s:>2} -> {d:<2}       {pred:>8.4}s    {:>8.4}s",
            target.mean_delay_s
        );
    }
}
