//! Generalization across topologies — the paper's headline claim, at example
//! scale: train the extended RouteNet on one topology (Abilene), then predict
//! delays on a topology it has never seen (toy5) without retraining.
//!
//! RouteNet can do this because nothing in the model depends on a fixed
//! graph: the GRUs and readout are shared functions applied along whatever
//! paths/links/nodes the input routing describes.
//!
//! Run: `cargo run --release --example generalization`

use rn_dataset::{generate, GeneratorConfig, TrafficModel};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use routenet::{evaluate, train, ExtendedRouteNet, ModelConfig, TrainConfig};

fn main() {
    let train_topo = topologies::abilene_default();
    let unseen_topo = topologies::toy5();
    // Per-pair rates come from one absolute range on both topologies, so the
    // unseen topology's inputs stay in-distribution — the same methodology
    // the figure2 experiment uses (see DESIGN.md on traffic models).
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 400.0,
            warmup_s: 40.0,
            ..SimConfig::default()
        },
        traffic_model: TrafficModel::AbsoluteRates {
            rate_range_bps: (100.0, 1_000.0),
            intensity_range: (0.5, 1.8),
        },
        ..GeneratorConfig::default()
    };

    println!(
        "training topology:   {} ({} nodes)",
        train_topo.name,
        train_topo.num_nodes()
    );
    println!(
        "evaluation topology: {} ({} nodes, never seen in training)\n",
        unseen_topo.name,
        unseen_topo.num_nodes()
    );

    println!("generating datasets ...");
    let train_set = generate(&train_topo, &gen_config, 31, 64);
    let eval_seen = generate(&train_topo, &gen_config, 32, 12);
    let eval_unseen = generate(&unseen_topo, &gen_config, 33, 12);

    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 12,
        mp_iterations: 4,
        readout_hidden: 24,
        ..ModelConfig::default()
    });
    let train_config = TrainConfig {
        epochs: 24,
        batch_size: 8,
        lr_halve_epochs: vec![16],
        verbose: true,
        ..TrainConfig::default()
    };
    train(&mut model, &train_set, None, &train_config);

    println!();
    let seen = evaluate(&model, &eval_seen, train_topo.name.as_str(), 10);
    let unseen = evaluate(&model, &eval_unseen, unseen_topo.name.as_str(), 10);
    println!("{}", seen.summary_line());
    println!("{}", unseen.summary_line());

    let ratio = unseen.median_abs_rel() / seen.median_abs_rel().max(1e-9);
    println!(
        "\nmedian |rel error| on the unseen topology is {ratio:.2}x the seen one — \
         the paper's Figure 2 shows the same graceful degradation (NSFNET vs GEANT2)."
    );
}
