//! Simulator deep-dive: run the packet-level simulator on NSFNET, inspect
//! per-flow and per-link statistics, contrast queue-size regimes, and inject
//! faults (random loss and a link outage).
//!
//! Run: `cargo run --release --example simulate_network`

use rn_netgraph::{topologies, Routing, TrafficMatrix};
use rn_netsim::{simulate, FaultPlan, SimConfig};
use rn_tensor::Prng;

fn main() {
    let topo = topologies::nsfnet_default();
    let mut rng = Prng::new(42);
    let routing = Routing::randomized(&topo, &mut rng);
    let traffic = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 0.9);
    let config = SimConfig {
        duration_s: 600.0,
        warmup_s: 60.0,
        seed: 42,
        ..SimConfig::default()
    };

    println!("=== scenario: NSFNET, busiest link at 90% offered utilization ===\n");

    // --- standard vs tiny queues ------------------------------------------
    let std_caps = vec![32usize; topo.num_nodes()];
    let tiny_caps = vec![1usize; topo.num_nodes()];
    let r_std = simulate(
        &topo,
        &routing,
        &traffic,
        &std_caps,
        &config,
        &FaultPlan::none(),
    )
    .unwrap();
    let r_tiny = simulate(
        &topo,
        &routing,
        &traffic,
        &tiny_caps,
        &config,
        &FaultPlan::none(),
    )
    .unwrap();

    println!("queue regime     mean delay      loss      delivered");
    println!(
        "standard (32)    {:>8.4}s   {:>7.4}   {:>10}",
        r_std.mean_delay_s(),
        r_std.loss_ratio(),
        r_std.total_delivered
    );
    println!(
        "tiny (1)         {:>8.4}s   {:>7.4}   {:>10}",
        r_tiny.mean_delay_s(),
        r_tiny.loss_ratio(),
        r_tiny.total_delivered
    );
    println!("\n(the delay/loss trade-off above is exactly what the extended RouteNet learns)");

    // --- hottest links -------------------------------------------------------
    let mut links: Vec<(usize, f64)> = r_std
        .links
        .iter()
        .enumerate()
        .map(|(l, s)| (l, s.utilization))
        .collect();
    links.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nbusiest links (standard-queue run):");
    for &(l, util) in links.iter().take(5) {
        let link = topo.link(l);
        println!(
            "  link {l:>2} ({} -> {}): utilization {:.2}, drops {}",
            link.src, link.dst, util, r_std.links[l].drops
        );
    }

    // --- slowest flows -------------------------------------------------------
    let mut flows: Vec<(usize, f64)> = r_std
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f.mean_delay_s))
        .collect();
    flows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nslowest flows (standard queues):");
    for &(i, delay) in flows.iter().take(5) {
        let (s, d) = r_std.flow_pairs[i];
        let f = &r_std.flows[i];
        let hops = routing.path(s, d).unwrap().hop_count();
        println!(
            "  {s:>2} -> {d:<2} ({hops} hops): delay {delay:.4}s, jitter {:.4}s, loss {:.3}",
            f.jitter_s, f.loss_ratio
        );
    }

    // --- fault injection ------------------------------------------------------
    println!("\n=== fault injection ===");
    let lossy = FaultPlan::with_drop_chance(0.05);
    let r_lossy = simulate(&topo, &routing, &traffic, &std_caps, &config, &lossy).unwrap();
    println!(
        "5% per-hop corruption: loss {:.4} (clean run: {:.4})",
        r_lossy.loss_ratio(),
        r_std.loss_ratio()
    );

    let hot_link = links[0].0;
    let outage = FaultPlan::none().with_outage(hot_link, 200.0, 400.0);
    let r_outage = simulate(&topo, &routing, &traffic, &std_caps, &config, &outage).unwrap();
    println!(
        "hottest link down for [200s, 400s): loss {:.4}, delivered {} (clean: {})",
        r_outage.loss_ratio(),
        r_outage.total_delivered,
        r_std.total_delivered
    );

    assert!(r_std.conservation_holds() && r_tiny.conservation_holds());
    println!("\nconservation checks passed on every run.");
}
