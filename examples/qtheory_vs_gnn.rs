//! Queueing theory vs the GNN — the paper's motivating comparison.
//!
//! The introduction argues that "traditional methods like Queueing Theory
//! often fail to provide accurate models for complex real-world scenarios".
//! This example puts numbers on that: a per-hop M/M/1/K decomposition
//! predictor and a trained extended RouteNet forecast the same held-out
//! scenarios, and both are scored against the packet-level simulator.
//!
//! Run: `cargo run --release --example qtheory_vs_gnn`

use rn_dataset::{generate, train_test_split, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_qtheory::PathDelayPredictor;
use rn_tensor::Prng;
use routenet::eval::evaluate_baseline;
use routenet::{evaluate, train, ExtendedRouteNet, ModelConfig, TrainConfig};

fn main() {
    let topo = topologies::abilene_default();
    // Load the network into the regime where decomposition assumptions break:
    // high utilization plus tiny buffers make per-hop arrivals strongly
    // non-Poisson (departure processes, blocking correlations).
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            ..SimConfig::default()
        },
        utilization_range: (0.85, 1.35),
        ..GeneratorConfig::default()
    };
    println!("generating 120 Abilene scenarios ...");
    let dataset = generate(&topo, &gen_config, 77, 120);
    let (train_set, test_set) = train_test_split(dataset, 0.8, &mut Prng::new(3));

    // --- analytical baseline: per-hop M/M/1/K decomposition -----------------
    let predictor = PathDelayPredictor::new(gen_config.sim.mean_packet_bits);
    let mut pairs = Vec::new();
    for sample in &test_set.samples {
        let mut sample_topo = topo.clone();
        for (l, &c) in sample.link_capacities.iter().enumerate() {
            sample_topo.set_link_capacity(l, c);
        }
        let preds = predictor.predict(
            &sample_topo,
            &sample.routing,
            &sample.traffic,
            &sample.queue_capacities,
        );
        for ((_, _, p), t) in preds.iter().zip(&sample.targets) {
            if t.is_reliable(10) && t.mean_delay_s > 0.0 {
                pairs.push((*p, t.mean_delay_s));
            }
        }
    }
    let qt_report = evaluate_baseline("mm1k-decomp", "abilene", &pairs);

    // --- learned model --------------------------------------------------------
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 32,
        ..ModelConfig::default()
    });
    println!(
        "training extended RouteNet on {} scenarios ...",
        train_set.len()
    );
    let train_config = TrainConfig {
        epochs: 24,
        batch_size: 8,
        lr_halve_epochs: vec![16],
        verbose: true,
        ..TrainConfig::default()
    };
    train(&mut model, &train_set, None, &train_config);
    let gnn_report = evaluate(&model, &test_set, "abilene", 10);

    println!("\n=== same test scenarios, two predictors ===");
    println!("{}", qt_report.summary_line());
    println!("{}", gnn_report.summary_line());

    println!(
        "\nwhere each wins: on lightly-loaded paths the decomposition is near-exact,\n\
         so medians are close ({:.3} vs {:.3}). On the congested tail the assumptions\n\
         collapse — compare p90 ({:.3} vs {:.3}) and p95 ({:.3} vs {:.3}); the GNN\n\
         stays calibrated where the formula falls apart.",
        qt_report.median_abs_rel(),
        gnn_report.median_abs_rel(),
        qt_report.abs_rel_summary.p90,
        gnn_report.abs_rel_summary.p90,
        qt_report.abs_rel_summary.p95,
        gnn_report.abs_rel_summary.p95
    );
    println!("\nwhy queueing theory struggles here: the M/M/1/K decomposition assumes");
    println!("Poisson arrivals at every hop, but downstream queues see the *departure*");
    println!("process of upstream ones; under load and tiny buffers the independence");
    println!("assumption collapses — exactly the regime the GNN learns from data.");
}
