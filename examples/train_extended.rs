//! Full training workflow on NSFNET: dataset generation, train/val split,
//! early stopping, model persistence, and reload-and-verify.
//!
//! Run: `cargo run --release --example train_extended`

use rn_dataset::{generate, train_test_split, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_tensor::Prng;
use routenet::model::PathPredictor;
use routenet::persist::{load_model, save_model};
use routenet::{evaluate, train, ExtendedRouteNet, ModelConfig, TrainConfig};

fn main() {
    let topo = topologies::nsfnet_default();
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 600.0,
            warmup_s: 60.0,
            ..SimConfig::default()
        },
        utilization_range: (0.6, 1.1),
        ..GeneratorConfig::default()
    };
    println!("generating 48 NSFNET scenarios ...");
    let dataset = generate(&topo, &gen_config, 2024, 48);
    let (train_val, test_set) = train_test_split(dataset, 0.75, &mut Prng::new(9));
    let (train_set, val_set) = train_test_split(train_val, 0.85, &mut Prng::new(10));
    println!(
        "split: {} train / {} val / {} test",
        train_set.len(),
        val_set.len(),
        test_set.len()
    );

    let model_config = ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 32,
        ..ModelConfig::default()
    };
    let train_config = TrainConfig {
        epochs: 30,
        batch_size: 8,
        patience: Some(4),
        lr_halve_epochs: vec![15],
        verbose: true,
        ..TrainConfig::default()
    };

    let mut model = ExtendedRouteNet::new(model_config);
    let history = train(&mut model, &train_set, Some(&val_set), &train_config);
    println!(
        "\ntrained for {} epochs (best val loss {:.4})",
        history.stopped_at,
        history.best_val_loss().unwrap()
    );

    let report = evaluate(&model, &test_set, "nsfnet", 10);
    println!("{}", report.summary_line());

    // Persist and reload: production models carry their preprocessing.
    let path = std::env::temp_dir().join("extended_routenet_nsfnet.json");
    save_model(&model, &path).expect("save model");
    println!("\nmodel saved to {}", path.display());
    let reloaded: ExtendedRouteNet = load_model(&path).expect("load model");
    let plan = reloaded.plan(&test_set.samples[0]);
    let a = model.predict(&model.plan(&test_set.samples[0]));
    let b = reloaded.predict(&plan);
    assert_eq!(a, b, "reloaded model must predict identically");
    println!("reload verified: predictions are bit-identical.");
    std::fs::remove_file(&path).ok();
}
