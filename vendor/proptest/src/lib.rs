//! Workspace-local stand-in for `proptest`.
//!
//! Offline build: implements the declarative `proptest!` macro, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `collection::vec`, and `any::<T>()` — enough to run the
//! workspace's property tests. Cases are generated from a per-test
//! deterministic RNG (seeded from the test name), so failures reproduce;
//! shrinking is not implemented (a failing case panics with its values via
//! the normal assert message).

/// Deterministic per-test random stream (xoshiro-style SplitMix64 chain).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name (FNV-1a hash), so every test gets a
    /// distinct but reproducible sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy (mirror of proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, i32, i64);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start <= self.end, "inverted float range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types — the value of `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Lengths acceptable to [`vec()`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for vectors of a given element strategy and length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (plain `assert!` under the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The declarative property-test macro.
///
/// Supports the subset the workspace uses: an optional leading
/// `#![proptest_config(...)]` and `#[test] fn name(pat in strategy, ...)`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::TestRng::for_test(stringify!($name));
                for proptest_case in 0..config.cases {
                    let _ = proptest_case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, usize)> {
        (1..=max, 1..=max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_composes((r, c) in pair(6).prop_flat_map(|(r, c)| Just((r, c)))) {
            prop_assert!((1..=6).contains(&r));
            prop_assert!((1..=6).contains(&c));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u64..5, 2..7usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn any_works(seed in any::<u64>(), flag in any::<bool>()) {
            let _ = (seed, flag);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
