//! The intermediate value tree shared by the serde stand-in and its JSON
//! front-end.

use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positives normalize to [`Value::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error with a plain message.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Create an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
