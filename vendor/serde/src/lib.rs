//! Workspace-local stand-in for `serde`.
//!
//! The build environment is offline, so this crate implements the small
//! surface the workspace uses: `Serialize`/`Deserialize` traits (via an
//! intermediate [`value::Value`] tree rather than serde's visitor machinery),
//! derive macros (re-exported from `serde_derive`), and impls for the
//! primitive/container types that appear in the workspace's data model.
//! `serde_json` in `vendor/serde_json` renders/parses the `Value` tree.
//!
//! The wire format is ordinary JSON; structural conventions (unit enum
//! variants as strings, data variants as single-key objects) mirror serde's
//! defaults so files stay human-readable, but compatibility with the real
//! serde is *not* a goal — only round-tripping within this workspace is.

pub mod value;

pub mod ser {
    use crate::value::Value;

    /// Types convertible to a [`Value`] tree.
    pub trait Serialize {
        /// Build the value tree for this object.
        fn serialize_value(&self) -> Value;
    }
}

pub mod de {
    use crate::value::{DeError, Value};

    /// Types reconstructible from a [`Value`] tree.
    pub trait Deserialize<'de>: Sized {
        /// Rebuild from a value tree.
        fn deserialize_value(v: &Value) -> Result<Self, DeError>;
    }

    /// Owned deserialization (no borrowed data) — blanket-implemented.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// Look up `name` in an object value and deserialize the field. A field
    /// absent from the wire is treated as `null` if the target type accepts
    /// it (`Option<T>` does) — so adding an `Option` field to a wire struct
    /// stays backward compatible with clients that never send it — and only
    /// reported as missing otherwise.
    pub fn field<T: DeserializeOwned>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Object(pairs) => match pairs.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => T::deserialize_value(fv),
                None => T::deserialize_value(&Value::Null)
                    .map_err(|_| DeError::new(format!("missing field `{name}`"))),
            },
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }
}

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

use value::{DeError, Value};

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected unsigned integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!("expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        // f32 -> f64 is exact, so round-trips are lossless.
        Value::F64(*self as f64)
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-tuple, found array of {}", items.len())));
                        }
                        Ok(($($t::deserialize_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::new(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )+};
}
impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));
