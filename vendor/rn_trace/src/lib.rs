//! Workspace-local observability primitive (std-only, zero dependencies):
//! env-gated span timing over per-stage geometric latency histograms.
//!
//! Every layer of the workspace that wants stage-level profiling — the
//! serve request lifecycle, the trainer's epoch loop, the autograd
//! backward tape — records into this crate's [`StageRecorder`] instead of
//! growing its own ad-hoc timing. The design constraints, in order:
//!
//! 1. **~Zero cost when off.** Recording is gated on [`enabled`], a single
//!    relaxed atomic load. No `Instant::now()` is taken for a disabled
//!    [`Span`], nothing allocates, nothing locks. The release-mode
//!    overhead smoke test (`tests/trace_overhead.rs` at the workspace
//!    root) pins this: tracing-off must add well under 2% to a training
//!    step.
//! 2. **Never perturbs results.** Tracing only reads clocks and bumps
//!    atomics — predictions and gradients are bitwise identical with
//!    tracing on or off (pinned by `tests/trace_equivalence.rs`).
//! 3. **One percentile convention.** [`nearest_rank`] here is the single
//!    inclusive nearest-rank definition the whole workspace uses;
//!    `rn_serve::metrics::nearest_rank` delegates to it, so serve
//!    dashboards, loadgen summaries, and stage breakdowns all agree on
//!    the degenerate cases (p0 = min, p100 = max, ties round down).
//!
//! Spans live on the thread's call stack (a [`Span`] is a drop guard), so
//! timing is naturally thread-local: workers on different threads record
//! into the same [`StageRecorder`] through its atomic histograms without
//! coordination.
//!
//! Recording is switched on by setting `RN_TRACE=1` (or `true`/`on`) in
//! the environment, read once and cached; tests and benches can flip the
//! switch programmatically with [`set_enabled`].

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Tri-state master switch: 0 = uninitialised (consult the environment),
/// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is trace recording on? First call reads `RN_TRACE` from the environment
/// (`1`, `true`, or `on` → on, anything else → off) and caches the answer;
/// every later call is a single relaxed atomic load — cheap enough to sit
/// on the hottest path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("RN_TRACE")
                .map(|v| {
                    let v = v.trim();
                    v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
                })
                .unwrap_or(false);
            // Racing initialisers agree (same env), so a plain store is fine.
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Programmatically force tracing on or off, overriding `RN_TRACE`. For
/// tests and benches that need both states in one process (environment
/// mutation is racy under the multi-threaded test harness).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Number of geometric histogram buckets. Bucket `i` covers durations up
/// to `LOW_NS * GROWTH^i` nanoseconds: 250ns · 1.5^63 ≈ 9 hours in the top
/// bucket, far above any span this workspace times.
const BUCKETS: usize = 64;
/// Upper bound of bucket 0 in nanoseconds. Spans here start at single
/// autograd tape ops (hundreds of ns), an order of magnitude below the
/// 10µs floor of `rn_serve`'s request-latency histogram.
const LOW_NS: f64 = 250.0;
/// Geometric growth factor between bucket upper bounds (same 1.5x
/// convention as `rn_serve::metrics::LatencyHistogram`: percentiles
/// over-estimate by at most one growth factor).
const GROWTH: f64 = 1.5;

/// Zero-based index of the **inclusive nearest-rank** percentile element
/// among `n` sorted samples: the smallest index `i` such that at least `p`
/// percent of the samples are `<= sample[i]` (the rank is `max(1,
/// ceil(p/100 · n))`, the comparison **inclusive** of `sample[i]` itself).
/// `None` when there are no samples.
///
/// The convention at the boundaries: `p = 0` is the minimum, `p = 100` the
/// maximum, ties round down (p50 of an even count is the lower median),
/// one sample is every percentile, `p > 100` clamps to the maximum. This
/// is the workspace's single percentile definition —
/// `rn_serve::metrics::nearest_rank` re-exports it, and its boundary
/// behaviour is pinned by tests on both sides.
pub fn nearest_rank(n: usize, p: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
    Some(rank.min(n) - 1)
}

/// Geometric-bucket duration histogram with atomic counters: the same
/// shape as `rn_serve`'s request-latency histogram (64 buckets, 1.5x
/// growth, exact sum/max on the side) but floored at 250ns so it can time
/// individual tape ops as well as whole epochs.
///
/// Percentiles read back the upper bound of the bucket holding the
/// requested rank — an over-estimate by at most one growth factor. The
/// running `sum` is exact, so totals and means carry no bucket error.
pub struct GeoHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl GeoHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns as f64 <= LOW_NS {
            return 0;
        }
        let idx = (ns as f64 / LOW_NS).log(GROWTH).ceil() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper duration bound (ns) of bucket `i`.
    fn bucket_upper_ns(i: usize) -> f64 {
        LOW_NS * GROWTH.powi(i as i32)
    }

    /// Record one duration (unconditionally — callers gate on [`enabled`]).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos() as u64);
    }

    /// Record one duration given in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Maximum recorded duration in milliseconds (exact).
    pub fn max_ms(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean recorded duration in milliseconds (exact).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns() as f64 / n as f64 / 1e6
    }

    /// Estimated duration (ms) at percentile `p` (0..100): the upper bound
    /// of the bucket containing the inclusive nearest rank. 0.0 when
    /// nothing was recorded.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let total = self.count();
        let Some(rank_idx) = nearest_rank(total as usize, p) else {
            return 0.0;
        };
        let rank = rank_idx as u64 + 1;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_ns(i) / 1e6;
            }
        }
        self.max_ms()
    }

    /// Zero every counter. Not atomic with respect to concurrent `record`
    /// calls — callers reset at quiescent points (e.g. the trainer between
    /// epochs, after its workers have joined).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

impl Default for GeoHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of one stage's histogram: what consumers
/// serialize into `MetricsSnapshot.stage_latency` entries or
/// `train_metrics.jsonl` stage arrays. Plain data — this crate stays
/// serde-free; each consumer owns its wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (one of the recorder's static stage names).
    pub name: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Exact total time in this stage, milliseconds.
    pub total_ms: f64,
    /// Exact mean span duration, milliseconds.
    pub mean_ms: f64,
    /// Median span duration (ms, bucket upper bound, inclusive
    /// nearest-rank).
    pub p50_ms: f64,
    /// 95th-percentile span duration (ms, bucket upper bound).
    pub p95_ms: f64,
    /// 99th-percentile span duration (ms, bucket upper bound).
    pub p99_ms: f64,
    /// Maximum span duration, milliseconds (exact).
    pub max_ms: f64,
}

/// A named set of stages, one [`GeoHistogram`] each. The unit of wiring:
/// serve owns one for its request lifecycle, the trainer one per training
/// run, autograd a process-global one for tape-op kinds.
///
/// Stage names are `&'static` and fixed at construction so recording is
/// index-based (no string hashing on the hot path).
pub struct StageRecorder {
    names: &'static [&'static str],
    hists: Vec<GeoHistogram>,
}

impl StageRecorder {
    /// A recorder with one histogram per stage name.
    pub fn new(names: &'static [&'static str]) -> Self {
        Self {
            names,
            hists: names.iter().map(|_| GeoHistogram::new()).collect(),
        }
    }

    /// The stage names, in recording-index order.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Record a span of `d` in stage `stage` (an index into [`names`]).
    /// No-op while tracing is off — safe to leave on the hot path.
    ///
    /// [`names`]: StageRecorder::names
    #[inline]
    pub fn record(&self, stage: usize, d: Duration) {
        if !enabled() {
            return;
        }
        self.hists[stage].record(d);
    }

    /// Record a span given start and end instants (same gating as
    /// [`record`]).
    ///
    /// [`record`]: StageRecorder::record
    #[inline]
    pub fn record_between(&self, stage: usize, start: Instant, end: Instant) {
        if !enabled() {
            return;
        }
        self.hists[stage].record(end.duration_since(start));
    }

    /// Open a drop-guard span for `stage`: the elapsed time is recorded
    /// when the guard drops. While tracing is off the guard is inert — no
    /// clock is read.
    #[inline]
    pub fn span(&self, stage: usize) -> Span<'_> {
        Span {
            recorder: self,
            stage,
            start: enabled().then(Instant::now),
        }
    }

    /// Direct access to one stage's histogram (for exact-sum consistency
    /// checks and tests).
    pub fn histogram(&self, stage: usize) -> &GeoHistogram {
        &self.hists[stage]
    }

    /// Snapshot every stage into plain stats, recording-index order.
    /// Stages with zero recorded spans are included (count 0, all times
    /// 0.0) so consumers can rely on positional alignment with
    /// [`names`].
    ///
    /// [`names`]: StageRecorder::names
    pub fn snapshot(&self) -> Vec<StageStats> {
        self.names
            .iter()
            .zip(&self.hists)
            .map(|(name, h)| StageStats {
                name,
                count: h.count(),
                total_ms: h.sum_ns() as f64 / 1e6,
                mean_ms: h.mean_ms(),
                p50_ms: h.percentile_ms(50.0),
                p95_ms: h.percentile_ms(95.0),
                p99_ms: h.percentile_ms(99.0),
                max_ms: h.max_ms(),
            })
            .collect()
    }

    /// Zero every stage histogram (see [`GeoHistogram::reset`] for the
    /// concurrency caveat).
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

/// Drop-guard returned by [`StageRecorder::span`]: records the elapsed
/// time into its stage when dropped. Inert (holds no start instant) when
/// tracing was off at open time.
pub struct Span<'a> {
    recorder: &'a StageRecorder,
    stage: usize,
    start: Option<Instant>,
}

impl Span<'_> {
    /// End the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder.record(self.stage, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global switch; every test that depends on
    /// it sets it explicitly and restores `on` (the harness default here)
    /// before returning, so parallel execution stays safe as long as
    /// off-phases don't overlap with recording assertions — which is why
    /// the off-phase tests use their own recorders.
    fn with_tracing<R>(on: bool, f: impl FnOnce() -> R) -> R {
        set_enabled(on);
        let r = f();
        set_enabled(true);
        r
    }

    #[test]
    fn nearest_rank_boundary_convention() {
        assert_eq!(nearest_rank(0, 50.0), None);
        assert_eq!(nearest_rank(1, 0.0), Some(0));
        assert_eq!(nearest_rank(1, 100.0), Some(0));
        assert_eq!(nearest_rank(4, 0.0), Some(0)); // p0 = minimum
        assert_eq!(nearest_rank(4, 50.0), Some(1)); // lower median
        assert_eq!(nearest_rank(4, 100.0), Some(3)); // p100 = maximum
        assert_eq!(nearest_rank(4, 200.0), Some(3)); // clamps
    }

    #[test]
    fn histogram_percentiles_are_monotonic_and_bounded() {
        let h = GeoHistogram::new();
        for us in [5u64, 50, 500, 5_000, 50_000] {
            h.record(Duration::from_micros(us));
        }
        let ps: Vec<f64> = [0.0, 50.0, 95.0, 99.0, 100.0]
            .iter()
            .map(|&p| h.percentile_ms(p))
            .collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotonic: {ps:?}");
        }
        // Bucket upper bound over-estimates by at most one growth factor.
        assert!(ps[4] >= 50.0 && ps[4] <= 50.0 * GROWTH);
        assert!((h.max_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_top_bucket_clamps_overflow() {
        let h = GeoHistogram::new();
        h.record(Duration::from_secs(1_000_000)); // ~11.6 days >> top bucket
        assert_eq!(h.count(), 1);
        let p100 = h.percentile_ms(100.0);
        assert!(p100.is_finite() && p100 > 0.0);
        // max/sum are exact even when the bucket clamps.
        assert!((h.max_ms() - 1e9).abs() < 1.0);
        assert_eq!(h.sum_ns(), 1_000_000 * 1_000_000_000);
    }

    #[test]
    fn recorder_spans_record_only_when_enabled() {
        static STAGES: &[&str] = &["a", "b"];
        with_tracing(false, || {
            let r = StageRecorder::new(STAGES);
            {
                let s = r.span(0);
                assert!(s.start.is_none(), "disabled span must not read a clock");
            }
            r.record(1, Duration::from_millis(1));
            assert_eq!(r.snapshot()[0].count, 0);
            assert_eq!(r.snapshot()[1].count, 0);
        });
        with_tracing(true, || {
            let r = StageRecorder::new(STAGES);
            r.span(0).finish();
            r.record(1, Duration::from_millis(2));
            let snap = r.snapshot();
            assert_eq!(snap[0].name, "a");
            assert_eq!(snap[0].count, 1);
            assert_eq!(snap[1].count, 1);
            assert!((snap[1].total_ms - 2.0).abs() < 1e-9);
        });
    }

    #[test]
    fn recorder_reset_zeroes_everything() {
        with_tracing(true, || {
            static STAGES: &[&str] = &["only"];
            let r = StageRecorder::new(STAGES);
            r.record(0, Duration::from_micros(123));
            assert_eq!(r.snapshot()[0].count, 1);
            r.reset();
            let s = &r.snapshot()[0];
            assert_eq!(s.count, 0);
            assert_eq!(s.total_ms, 0.0);
            assert_eq!(s.max_ms, 0.0);
            assert_eq!(s.p99_ms, 0.0);
        });
    }

    #[test]
    fn concurrent_records_agree_on_sum_and_count() {
        with_tracing(true, || {
            static STAGES: &[&str] = &["hot"];
            let r = StageRecorder::new(STAGES);
            let threads = 8;
            let per = 1_000u64;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let r = &r;
                    scope.spawn(move || {
                        for i in 0..per {
                            r.record(0, Duration::from_nanos(1_000 + t * per + i));
                        }
                    });
                }
            });
            let h = r.histogram(0);
            assert_eq!(h.count(), threads * per);
            let expect: u64 = (0..threads * per).map(|k| 1_000 + k).sum();
            assert_eq!(h.sum_ns(), expect);
        });
    }

    #[test]
    fn set_enabled_overrides_env() {
        with_tracing(false, || assert!(!enabled()));
        with_tracing(true, || assert!(enabled()));
    }
}
