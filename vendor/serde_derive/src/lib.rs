//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes the workspace uses — structs with named fields and enums whose
//! variants are unit, newtype/tuple, or struct-like — by walking the raw
//! token stream (no `syn`/`quote`: the build environment is offline). Types
//! with generic parameters are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
enum Variant {
    Unit(String),
    /// Tuple variant with the given arity.
    Tuple(String, usize),
    /// Struct variant with named fields.
    Struct(String, Vec<String>),
}

/// Skip any `#[...]` attributes starting at `i`; returns the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse `name: Type, ...` named-field lists, returning the field names.
/// Tracks angle-bracket depth so commas inside generics don't split fields.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        fields.push(name);
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found `{other}`"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the top-level comma-separated elements of a tuple-variant body.
fn tuple_arity(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stand-in");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => panic!("serde_derive: only brace-bodied structs/enums are supported"),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                let vname = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, found `{other}`"),
                };
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        variants.push(Variant::Struct(vname, parse_named_fields(&inner)));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        variants.push(Variant::Tuple(vname, tuple_arity(&inner)));
                        j += 1;
                    }
                    _ => variants.push(Variant::Unit(vname)),
                }
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` for the stand-in serde.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut entries = String::new();
            for f in &fields {
                entries.push_str(&format!(
                    "(\"{f}\".to_string(), ::serde::ser::Serialize::serialize_value(&self.{f})),"
                ));
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::value::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::ser::Serialize::serialize_value(x0))]),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::ser::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binders = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::ser::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::value::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::value::Value::Object(vec![{}]))]),\n",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::value::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` for the stand-in serde.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!("{f}: ::serde::de::field(v, \"{f}\")?,"));
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize_value(v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::value::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, 1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::de::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|k| {
                                format!("::serde::de::Deserialize::deserialize_value(&items[{k}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                                 ::serde::value::Value::Array(items) if items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{vn}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::value::DeError::new(\
                                     \"variant {vn}: expected array of {arity}\")),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(inner, \"{f}\")?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize_value(v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::value::DeError> {{\n\
                         match v {{\n\
                             ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::value::DeError::new(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (key, inner) = &pairs[0];\n\
                                 let _ = inner;\n\
                                 match key.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::value::DeError::new(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::value::DeError::new(\
                                 format!(\"expected {name} variant, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
