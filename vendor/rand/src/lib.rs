//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the tiny slice of the `rand` 0.8 API the workspace actually uses: a
//! seedable `StdRng` plus `gen`/`gen_range` on an `Rng` trait. The generator
//! is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 — the same
//! construction `rand`'s own SmallRng family uses. Streams are deterministic
//! per seed, which is all the workspace's reproducibility story requires.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from 64 random bits ("standard" distribution).
pub trait Standard: Sized {
    /// Map 64 random bits to a value of this type.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn from_bits(bits: u64) -> f32 {
        // 24 significant bits -> uniform in [0, 1).
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> f64 {
        // 53 significant bits -> uniform in [0, 1).
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges samplable by an [`Rng`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply rejection sampling (Lemire); bias is rejected, so the
    // distribution is exactly uniform.
    let zone = n.wrapping_neg() % n; // number of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start <= self.end, "gen_range: inverted float range");
        self.start + (self.end - self.start) * f64::from_bits_standard(rng.next_u64())
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start <= self.end, "gen_range: inverted float range");
        self.start + (self.end - self.start) * f32::from_bits_standard(rng.next_u64())
    }
}

// Small helper shims so the float range impls read clearly.
trait FromBitsStandard {
    fn from_bits_standard(bits: u64) -> Self;
}
impl FromBitsStandard for f32 {
    #[inline]
    fn from_bits_standard(bits: u64) -> f32 {
        <f32 as Standard>::from_bits(bits)
    }
}
impl FromBitsStandard for f64 {
    #[inline]
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// High-level sampling interface, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The default generator: xoshiro256++ seeded via SplitMix64.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 256-bit-state generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }
}
