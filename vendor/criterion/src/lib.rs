//! Workspace-local stand-in for `criterion`.
//!
//! Offline build: provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) with a simple
//! warmup + median-of-samples timer instead of criterion's statistical
//! machinery.
//!
//! On top of what real criterion does, every group writes a machine-readable
//! `BENCH_<group>.json` (ns/op and ops/sec per benchmark) into
//! `$BENCH_OUT_DIR` (default: the current working directory, which under
//! `cargo bench` is the workspace root). CI uploads these artifacts so
//! hot-path performance is tracked across PRs.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer value wrapper (re-exported from `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    measured_ns: f64,
}

impl Bencher {
    /// Measure `f`: a short warmup, then `samples` timed runs; the median
    /// per-iteration time is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that runs >= ~5 ms
        // per sample so timer resolution is irrelevant.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 5 || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-finite timing"));
        self.measured_ns = per_iter[per_iter.len() / 2];
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id within its group.
    pub id: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// Throughput (operations per second).
    pub ops_per_sec: f64,
}

/// A named collection of benchmarks; writes `BENCH_<name>.json` on `finish`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    results: Vec<Measurement>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured_ns: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.measured_ns;
        let m = Measurement {
            id: id.clone(),
            ns_per_op: ns,
            ops_per_sec: if ns > 0.0 { 1.0e9 / ns } else { f64::INFINITY },
        };
        eprintln!(
            "bench {:<40} {:>14.0} ns/op {:>14.1} ops/s",
            format!("{}/{}", self.name, id),
            m.ns_per_op,
            m.ops_per_sec
        );
        self.results.push(m);
    }

    /// Benchmark a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().id, f);
        self
    }

    /// Benchmark a closure against a fixed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Finish the group: write `BENCH_<name>.json`.
    pub fn finish(self) {
        write_report(&self.name, &self.results);
    }
}

/// Render and write the group report. Also used by custom bench binaries that
/// time things without going through [`Criterion`].
pub fn write_report(group: &str, results: &[Measurement]) {
    write_report_with_derived(group, results, &[]);
}

/// Like [`write_report`], with extra derived scalars (e.g. speedup ratios)
/// recorded under a `"derived"` key.
pub fn write_report_with_derived(group: &str, results: &[Measurement], derived: &[(&str, f64)]) {
    // `cargo bench` runs with the *package* as cwd; default to the workspace
    // root (two levels above this vendored crate) so BENCH_*.json artifacts
    // land in one predictable place.
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("vendored crate has a workspace root")
            .display()
            .to_string()
    });
    let path = std::path::Path::new(&dir).join(format!("BENCH_{group}.json"));
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"group\": \"{group}\",\n  \"benchmarks\": [\n"));
    for (i, m) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.3}}}{}\n",
            m.id,
            m.ns_per_op,
            m.ops_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]");
    if !derived.is_empty() {
        body.push_str(",\n  \"derived\": {\n");
        for (i, (key, value)) in derived.iter().enumerate() {
            body.push_str(&format!(
                "    \"{key}\": {value:.4}{}\n",
                if i + 1 < derived.len() { "," } else { "" }
            ));
        }
        body.push_str("  }");
    }
    body.push_str("\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!(
            "criterion stand-in: failed to write {}: {e}",
            path.display()
        );
    } else {
        eprintln!("bench report written to {}", path.display());
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirror of criterion's CLI-config hook; accepts and ignores arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
            _criterion: self,
        }
    }

    /// Top-level single benchmark (own group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
