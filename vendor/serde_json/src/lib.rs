//! JSON front-end for the workspace-local `serde` stand-in.
//!
//! Renders and parses the [`serde::value::Value`] tree. Numbers use Rust's
//! shortest-round-trip float formatting, so `f32`/`f64` values survive a
//! save/load cycle bit-exactly (the persistence tests rely on this).

use serde::de::DeserializeOwned;
use serde::ser::Serialize;
use serde::value::Value;
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::DeError> for Error {
    fn from(e: serde::value::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; force a `.0` so the
                // parser keeps integral floats in the float domain.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, pv)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, pv);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value());
    Ok(out)
}

/// Serialize to any writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON string into a value of `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::deserialize_value(&value).map_err(Error::from)
}

/// Parse JSON from any reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let tricky = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&tricky).unwrap()).unwrap();
        assert_eq!(back, tricky, "shortest-round-trip floats must be exact");
        let f: f32 = from_str(&to_string(&1.0e-7f32).unwrap()).unwrap();
        assert_eq!(f, 1.0e-7f32);
        let s: String = from_str(&to_string("he\"llo\n").unwrap()).unwrap();
        assert_eq!(s, "he\"llo\n");
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }

    #[test]
    fn round_trip_containers() {
        let xs = vec![(1usize, 2.5f64), (3, -0.25)];
        let back: Vec<(usize, f64)> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
        let opt: Option<u64> = from_str(&to_string(&None::<u64>).unwrap()).unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
    }
}
