//! A persistent fork-join worker gang for intra-batch sharding.
//!
//! The `par_iter` surface in this crate spawns scoped threads per call, which
//! is fine for coarse work (one backward pass per item) but far too slow for
//! the sharded megabatch kernels: those dispatch a parallel section per tape
//! node, hundreds of times per backward pass. [`WorkerPool`] keeps `n`
//! threads parked on a condvar and wakes them for one job at a time:
//! [`WorkerPool::run`] publishes a `Fn(usize)` closure, every worker invokes
//! it once with its own index, and `run` returns when all workers are done.
//!
//! ## Safety
//!
//! `run` accepts a closure borrowing caller-stack data even though worker
//! threads are `'static`. The lifetime is erased by storing a raw pointer to
//! the `&dyn Fn(usize)` trait object; soundness rests on `run` not returning
//! until every worker has finished the generation it published, so the
//! pointee strictly outlives every dereference. This is the same contract
//! real rayon's `scope`/`broadcast` implement internally.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The lifetime-erased job pointer. Only ever dereferenced between a
/// generation's publication and its completion, while the publishing `run`
/// call keeps the referent alive on its stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only sent to workers that dereference it while the
// publishing thread blocks in `run` (see module docs).
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    generation: u64,
    /// Workers still running the current generation.
    remaining: usize,
    /// Workers that panicked in the current generation.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new generation (or shutdown).
    work_ready: Condvar,
    /// The publisher waits here for `remaining == 0`.
    work_done: Condvar,
}

/// A lifetime-erased one-shot job for the background lane. Soundness rests
/// on the [`Prefetch`] handle blocking (in `join` or on drop) until the job
/// has run, so borrowed captures outlive every use — the same contract as
/// [`WorkerPool::run`], with the handle standing in for the blocked caller.
type BackgroundJob = Box<dyn FnOnce() + Send + 'static>;

/// The background lane: one spare thread servicing detached one-shot jobs
/// (megabatch composition prefetch) while the gang runs broadcast kernels.
/// Spawned lazily on first submit so pools that never prefetch stay at
/// exactly `workers` threads.
#[derive(Default)]
struct BackgroundLane {
    tx: Option<mpsc::Sender<BackgroundJob>>,
    handle: Option<JoinHandle<()>>,
}

/// A pending background job's result handle (see [`WorkerPool::submit`]).
///
/// The handle **blocks until the job has completed** — in [`Prefetch::join`]
/// or, if dropped early, in its destructor. That blocking is what makes it
/// sound for the job to borrow caller-stack data; leaking the handle with
/// `mem::forget` would break the contract and must not be done.
pub struct Prefetch<'scope, T> {
    rx: mpsc::Receiver<std::thread::Result<T>>,
    received: bool,
    /// Ties the handle to the borrows captured by the submitted job.
    _scope: PhantomData<&'scope ()>,
}

impl<T> Prefetch<'_, T> {
    /// Wait for the job and take its result. Re-raises the job's panic, if
    /// it panicked.
    pub fn join(mut self) -> T {
        self.received = true;
        match self.rx.recv().expect("background worker dropped a job") {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<T> Drop for Prefetch<'_, T> {
    fn drop(&mut self) {
        if !self.received {
            // Block until the job finished; a panic inside the job is
            // swallowed here (the caller chose not to look at the result).
            let _ = self.rx.recv();
        }
    }
}

/// A fixed-size gang of persistent worker threads executing one broadcast
/// job at a time (see module docs), plus a lazily-spawned background lane
/// for detached one-shot jobs ([`WorkerPool::submit`]).
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes concurrent publishers: one `run` owns the gang at a time.
    gate: Mutex<()>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
    background: Mutex<BackgroundLane>,
}

impl WorkerPool {
    /// Spawn a gang of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                remaining: 0,
                panicked: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rn-shard-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            shared,
            gate: Mutex::new(()),
            workers,
            handles,
            background: Mutex::new(BackgroundLane::default()),
        }
    }

    /// Run `job` on the pool's background thread without blocking the
    /// caller, returning a [`Prefetch`] handle that yields the result.
    ///
    /// The lane is a spare thread next to the gang: a caller can overlap
    /// preparation work (e.g. composing the next megabatch) with broadcast
    /// kernels running on the gang via [`WorkerPool::run`]. Jobs run one at
    /// a time in submission order.
    ///
    /// # Safety
    ///
    /// The job may borrow caller-stack data even though it runs on a
    /// `'static` thread. That is sound **only** because the returned handle
    /// blocks until the job completes — in [`Prefetch::join`] or in its
    /// destructor. Unlike [`WorkerPool::run`] (which blocks inside the
    /// call), the guarantee here rests on the destructor actually running:
    /// the caller must not leak the handle (`std::mem::forget`,
    /// `ManuallyDrop`, an `Rc` cycle, …) — a leaked handle lets the job run
    /// against freed stack memory. Hence `unsafe`: the obligation is the
    /// caller's. (Jobs capturing only `'static` data are trivially fine.)
    pub unsafe fn submit<'scope, T: Send + 'scope>(
        &'scope self,
        job: impl FnOnce() -> T + Send + 'scope,
    ) -> Prefetch<'scope, T> {
        let (tx, rx) = mpsc::channel();
        let task = move || {
            // The receiver may already be gone (handle dropped mid-panic);
            // a failed send only means nobody is listening.
            tx.send(catch_unwind(AssertUnwindSafe(job))).ok();
        };
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: erase the borrow's lifetime; the Prefetch handle blocks
        // (join or drop) until the job has finished, so every capture
        // strictly outlives its last use — see the handle's docs.
        let boxed: BackgroundJob = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, BackgroundJob>(boxed)
        };
        let mut lane = self.background.lock().expect("background lane poisoned");
        if lane.tx.is_none() {
            let (jtx, jrx) = mpsc::channel::<BackgroundJob>();
            lane.handle = Some(
                std::thread::Builder::new()
                    .name("rn-shard-background".into())
                    .spawn(move || {
                        while let Ok(job) = jrx.recv() {
                            job();
                        }
                    })
                    .expect("spawn background worker"),
            );
            lane.tx = Some(jtx);
        }
        lane.tx
            .as_ref()
            .expect("background lane initialized")
            .send(boxed)
            .expect("background worker alive");
        Prefetch {
            rx,
            received: false,
            _scope: PhantomData,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `job(i)` once on every worker `i in 0..workers()`, blocking until
    /// all invocations return. Concurrent callers are serialized. Panics if
    /// any worker's invocation panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let _own = self.gate.lock().expect("worker pool gate poisoned");
        // SAFETY: erase the borrow's lifetime; `run` blocks below until every
        // worker finished this generation, so the pointee outlives all uses.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const _)
        });
        let mut st = self.shared.state.lock().expect("worker pool poisoned");
        st.job = Some(ptr);
        st.generation += 1;
        st.remaining = self.workers;
        st.panicked = 0;
        let generation = st.generation;
        self.shared.work_ready.notify_all();
        while st.remaining > 0 {
            st = self
                .shared
                .work_done
                .wait(st)
                .expect("worker pool poisoned");
        }
        debug_assert_eq!(st.generation, generation);
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        assert!(panicked == 0, "{panicked} shard worker(s) panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            h.join().expect("shard worker panicked at shutdown");
        }
        // Close the background lane (drop the sender, join the thread). Any
        // outstanding Prefetch handle has already blocked to completion —
        // handles borrow the pool, so they cannot outlive this drop.
        let mut lane = self.background.lock().expect("background lane poisoned");
        lane.tx = None;
        if let Some(h) = lane.handle.take() {
            h.join().expect("background worker panicked at shutdown");
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("worker pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen {
                    seen = st.generation;
                    break st.job.expect("generation published without a job");
                }
                st = shared.work_ready.wait(st).expect("worker pool poisoned");
            }
        };
        // SAFETY: the publisher keeps the closure alive until `remaining`
        // reaches 0, which happens strictly after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        let mut st = shared.state.lock().expect("worker pool poisoned");
        if result.is_err() {
            st.panicked += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_exactly_once_per_job() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = WorkerPool::new(3);
        let mut blocks = [0u64, 0, 0];
        let slots: Vec<Mutex<&mut u64>> = blocks.iter_mut().map(Mutex::new).collect();
        pool.run(&|i| {
            **slots[i].lock().unwrap() = i as u64 + 1;
        });
        drop(slots);
        assert_eq!(blocks, [1, 2, 3]);
    }

    #[test]
    fn pool_survives_many_generations_and_shutdown() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..1000 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000);
        drop(pool); // must join cleanly
    }

    #[test]
    fn background_submit_overlaps_the_gang_and_borrows_stack_data() {
        let pool = WorkerPool::new(2);
        let input = [1u64, 2, 3, 4];
        // The background job borrows `input` while the gang runs jobs.
        // SAFETY: joined below, never leaked.
        let task = unsafe { pool.submit(|| input.iter().sum::<u64>()) };
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(task.join(), 10);
        assert_eq!(total.load(Ordering::Relaxed), 100);
        // Jobs run in submission order, one at a time.
        // SAFETY: 'static captures; joined immediately.
        let first = unsafe { pool.submit(|| 1u64) };
        let second = unsafe { pool.submit(|| 2u64) };
        assert_eq!(first.join(), 1);
        assert_eq!(second.join(), 2);
    }

    #[test]
    fn dropped_prefetch_handle_blocks_until_the_job_ran() {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            // SAFETY: 'static captures; dropped (blocking) in this scope.
            let handle = unsafe {
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    ran.fetch_add(1, Ordering::SeqCst);
                })
            };
            drop(handle); // must block until the job completed
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn background_panic_resurfaces_in_join() {
        let pool = WorkerPool::new(1);
        // SAFETY: 'static capture; joined immediately.
        let task = unsafe { pool.submit(|| -> usize { panic!("background boom") }) };
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| task.join()))
            .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str panic>");
        assert!(msg.contains("background boom"), "{msg}");
        // The lane survives a panicked job.
        // SAFETY: 'static capture; joined immediately.
        assert_eq!(unsafe { pool.submit(|| 7usize) }.join(), 7);
    }

    #[test]
    fn concurrent_publishers_are_serialized() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 2);
    }
}
