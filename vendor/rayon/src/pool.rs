//! A persistent fork-join worker gang for intra-batch sharding.
//!
//! The `par_iter` surface in this crate spawns scoped threads per call, which
//! is fine for coarse work (one backward pass per item) but far too slow for
//! the sharded megabatch kernels: those dispatch a parallel section per tape
//! node, hundreds of times per backward pass. [`WorkerPool`] keeps `n`
//! threads parked on a condvar and wakes them for one job at a time:
//! [`WorkerPool::run`] publishes a `Fn(usize)` closure, every worker invokes
//! it once with its own index, and `run` returns when all workers are done.
//!
//! ## Safety
//!
//! `run` accepts a closure borrowing caller-stack data even though worker
//! threads are `'static`. The lifetime is erased by storing a raw pointer to
//! the `&dyn Fn(usize)` trait object; soundness rests on `run` not returning
//! until every worker has finished the generation it published, so the
//! pointee strictly outlives every dereference. This is the same contract
//! real rayon's `scope`/`broadcast` implement internally.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The lifetime-erased job pointer. Only ever dereferenced between a
/// generation's publication and its completion, while the publishing `run`
/// call keeps the referent alive on its stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only sent to workers that dereference it while the
// publishing thread blocks in `run` (see module docs).
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    generation: u64,
    /// Workers still running the current generation.
    remaining: usize,
    /// Workers that panicked in the current generation.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new generation (or shutdown).
    work_ready: Condvar,
    /// The publisher waits here for `remaining == 0`.
    work_done: Condvar,
}

/// A fixed-size gang of persistent worker threads executing one broadcast
/// job at a time (see module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes concurrent publishers: one `run` owns the gang at a time.
    gate: Mutex<()>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a gang of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                remaining: 0,
                panicked: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rn-shard-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            shared,
            gate: Mutex::new(()),
            workers,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `job(i)` once on every worker `i in 0..workers()`, blocking until
    /// all invocations return. Concurrent callers are serialized. Panics if
    /// any worker's invocation panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let _own = self.gate.lock().expect("worker pool gate poisoned");
        // SAFETY: erase the borrow's lifetime; `run` blocks below until every
        // worker finished this generation, so the pointee outlives all uses.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const _)
        });
        let mut st = self.shared.state.lock().expect("worker pool poisoned");
        st.job = Some(ptr);
        st.generation += 1;
        st.remaining = self.workers;
        st.panicked = 0;
        let generation = st.generation;
        self.shared.work_ready.notify_all();
        while st.remaining > 0 {
            st = self
                .shared
                .work_done
                .wait(st)
                .expect("worker pool poisoned");
        }
        debug_assert_eq!(st.generation, generation);
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        assert!(panicked == 0, "{panicked} shard worker(s) panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            h.join().expect("shard worker panicked at shutdown");
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("worker pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen {
                    seen = st.generation;
                    break st.job.expect("generation published without a job");
                }
                st = shared.work_ready.wait(st).expect("worker pool poisoned");
            }
        };
        // SAFETY: the publisher keeps the closure alive until `remaining`
        // reaches 0, which happens strictly after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        let mut st = shared.state.lock().expect("worker pool poisoned");
        if result.is_err() {
            st.panicked += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_exactly_once_per_job() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = WorkerPool::new(3);
        let mut blocks = [0u64, 0, 0];
        let slots: Vec<Mutex<&mut u64>> = blocks.iter_mut().map(Mutex::new).collect();
        pool.run(&|i| {
            **slots[i].lock().unwrap() = i as u64 + 1;
        });
        drop(slots);
        assert_eq!(blocks, [1, 2, 3]);
    }

    #[test]
    fn pool_survives_many_generations_and_shutdown() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..1000 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000);
        drop(pool); // must join cleanly
    }

    #[test]
    fn concurrent_publishers_are_serialized() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 2);
    }
}
