//! Workspace-local stand-in for `rayon`.
//!
//! Offline build: this crate supplies the parallel-iterator surface the
//! workspace uses (`par_iter`, `into_par_iter`, `par_chunks`, `map`,
//! `filter_map`, `flat_map_iter`, `collect`, `reduce`) on top of
//! `std::thread::scope`. Unlike real rayon there is no work-stealing pool:
//! each adaptor evaluates eagerly, splitting its input into one contiguous
//! chunk per available core. That preserves rayon's ordering and determinism
//! guarantees (outputs are concatenated in input order) while still using
//! every core for the heavyweight per-item work this workspace does
//! (simulating samples, per-graph backward passes).

pub mod pool;

pub use pool::{Prefetch, WorkerPool};

use std::num::NonZeroUsize;

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// Run `f` over `items` by reference, in parallel, preserving order.
fn par_map_ref<'a, T: Sync, U: Send>(items: &'a [T], f: &(dyn Fn(&'a T) -> U + Sync)) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Run `f` over owned `items`, in parallel, preserving order.
fn par_map_owned<T: Send, U: Send>(items: Vec<T>, f: &(dyn Fn(T) -> U + Sync)) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|part| scope.spawn(move || part.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// An eagerly evaluated, order-preserving "parallel iterator" over owned items.
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Parallel map.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParVec<U> {
        ParVec {
            items: par_map_owned(self.items, &f),
        }
    }

    /// Parallel filter-map.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParVec<U> {
        let stage = par_map_owned(self.items, &f);
        ParVec {
            items: stage.into_iter().flatten().collect(),
        }
    }

    /// Parallel flat-map where each item yields a sequential iterator.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParVec<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync,
    {
        let stage = par_map_owned(self.items, &|t| f(t).into_iter().collect::<Vec<_>>());
        ParVec {
            items: stage.into_iter().flatten().collect(),
        }
    }

    /// Collect into any container constructible from a `Vec` (in input order).
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }

    /// Fold all items with `op`, starting from `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Borrowing entry point: first adaptor runs in parallel over `&[T]`.
pub struct ParSlice<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Parallel map over references.
    pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParVec<U> {
        ParVec {
            items: par_map_ref(self.items, &|t| f(t)),
        }
    }

    /// Parallel filter-map over references.
    pub fn filter_map<U: Send, F: Fn(&'a T) -> Option<U> + Sync>(self, f: F) -> ParVec<U> {
        let stage = par_map_ref(self.items, &|t| f(t));
        ParVec {
            items: stage.into_iter().flatten().collect(),
        }
    }

    /// Parallel flat-map over references.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParVec<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        let stage = par_map_ref(self.items, &|t| f(t).into_iter().collect::<Vec<_>>());
        ParVec {
            items: stage.into_iter().flatten().collect(),
        }
    }
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;
    /// Start a borrowed parallel pipeline.
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Start an owned parallel pipeline.
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParVec<$t> {
                ParVec { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u64, u32, usize);

/// `.par_chunks(n)` on slices: parallel pipeline whose items are sub-slices.
pub trait ParallelChunks<'a> {
    /// Element type of the underlying slice.
    type Item: Sync + 'a;
    /// Split into contiguous chunks of at most `size` and pipeline them.
    fn par_chunks(&'a self, size: usize) -> ParVec<&'a [Self::Item]>;
}

impl<'a, T: Sync + Send + 'a> ParallelChunks<'a> for [T] {
    type Item = T;
    fn par_chunks(&'a self, size: usize) -> ParVec<&'a [T]> {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        ParVec {
            items: self.chunks(size).collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelChunks};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_and_reduce() {
        let xs: Vec<u64> = (0..100).collect();
        let (sum, count) = xs
            .par_iter()
            .filter_map(|&x| if x % 2 == 0 { Some(x) } else { None })
            .map(|x| (x, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(count, 50);
        assert_eq!(sum, (0..100).filter(|x| x % 2 == 0).sum::<u64>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let xs = vec![1usize, 2, 3];
        let out: Vec<usize> = xs.par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<u64> = (0u64..17).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 17);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn par_chunks_covers_slice() {
        let xs: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = xs.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }
}
