//! Tracing is bitwise invisible to training: the same seed produces the
//! same model, losses and predictions with `RN_TRACE` on or off, and the
//! traced run emits a well-formed per-epoch JSONL stream plus a final
//! run summary with backward op-kind attribution.
//!
//! Tracing state is process-global (`rn_trace::set_enabled`), so both runs
//! live in one test function, sequenced explicitly.

use rn_dataset::{generate, Dataset, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use routenet::model::PathPredictor;
use routenet::train_trace::{EpochRecord, RunSummary, STAGES};
use routenet::trainer::{train, TrainConfig, TrainingHistory};
use routenet::{ExtendedRouteNet, ModelConfig};

fn toy_dataset(n: usize, seed: u64) -> Dataset {
    let config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::toy5(), &config, seed, n)
}

/// Train a fresh fixed-seed model and return (history, prediction bits).
fn train_and_predict(train_set: &Dataset, val_set: &Dataset) -> (TrainingHistory, Vec<u64>) {
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        seed: 5,
        ..ModelConfig::default()
    });
    let config = TrainConfig {
        epochs: 3,
        batch_size: 4,
        megabatch_size: 2,
        ..TrainConfig::default()
    };
    let history = train(&mut model, train_set, Some(val_set), &config);
    let plans: Vec<_> = val_set.samples.iter().map(|s| model.plan(s)).collect();
    let bits = model
        .predict_batch(&plans)
        .iter()
        .flatten()
        .map(|d| d.to_bits())
        .collect();
    (history, bits)
}

fn loss_bits(h: &TrainingHistory) -> Vec<u64> {
    h.train_loss
        .iter()
        .chain(&h.val_loss)
        .map(|l| l.to_bits())
        .collect()
}

#[test]
fn traced_training_is_bitwise_identical_and_emits_epoch_jsonl() {
    let train_set = toy_dataset(6, 41);
    let val_set = toy_dataset(2, 42);
    let out = std::env::temp_dir().join(format!("rn_trace_train_{}.jsonl", std::process::id()));
    // The env knob must not leak in from the harness environment — the
    // config field is the path under test.
    std::env::remove_var("RN_TRACE_TRAIN_OUT");

    rn_trace::set_enabled(false);
    let (hist_off, bits_off) = train_and_predict(&train_set, &val_set);
    assert!(
        !out.exists(),
        "no trace file may be written while tracing is off"
    );

    rn_trace::set_enabled(true);
    std::env::set_var("RN_TRACE_TRAIN_OUT", &out);
    let (hist_on, bits_on) = train_and_predict(&train_set, &val_set);
    std::env::remove_var("RN_TRACE_TRAIN_OUT");
    rn_trace::set_enabled(false);

    assert_eq!(
        loss_bits(&hist_off),
        loss_bits(&hist_on),
        "per-epoch losses must be bitwise identical tracing on vs off"
    );
    assert_eq!(
        bits_off, bits_on,
        "trained-model predictions must be bitwise identical tracing on vs off"
    );

    // The stream: one EpochRecord line per executed epoch, then exactly one
    // RunSummary line.
    let text = std::fs::read_to_string(&out).expect("trace file written");
    std::fs::remove_file(&out).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        hist_on.stopped_at + 1,
        "one line per epoch plus the summary"
    );
    for (epoch, line) in lines[..hist_on.stopped_at].iter().enumerate() {
        let rec: EpochRecord = serde_json::from_str(line).expect("epoch line parses");
        assert_eq!(rec.epoch, epoch);
        assert_eq!(rec.stages.len(), STAGES.len());
        for (s, &name) in rec.stages.iter().zip(STAGES) {
            assert_eq!(s.name, name, "stage order is positional");
        }
        // Compose, forward, backward and the optimizer all run every epoch;
        // eval runs because a validation set is present.
        for s in &rec.stages {
            assert!(s.count > 0, "stage {} recorded no spans", s.name);
            assert!(s.total_ms >= 0.0 && s.total_ms.is_finite());
        }
        assert!(rec.train_loss.is_some() && rec.val_loss.is_some());
    }
    let summary: RunSummary =
        serde_json::from_str(lines[hist_on.stopped_at]).expect("summary line parses");
    assert!(summary.summary);
    assert_eq!(summary.epochs, hist_on.stopped_at);
    assert_eq!(summary.stages.len(), STAGES.len());
    let fwd = summary.stages.iter().find(|s| s.name == "forward").unwrap();
    assert!(fwd.count > 0 && fwd.total_ms > 0.0);
    // Backward op-kind attribution reached the tape.
    assert!(!summary.op_kinds.is_empty());
    assert!(
        summary.op_kinds.iter().any(|k| k.count > 0),
        "at least one op kind must have recorded backward spans"
    );
}
