//! Golden bit-identity tests for the queue-entity (QoS) model.
//!
//! The contract under test: FIFO-only scenarios — legacy samples, or QoS
//! samples whose spec degenerates to one class scheduled FIFO — run through
//! the queue-aware compose path produce **bitwise identical** predictions
//! AND gradients to the two-entity [`ExtendedRouteNet`], at every
//! shard-worker count and in both tape index modes (zero-copy on/off). The
//! queue entity must be invisible until a scenario actually schedules
//! classes.

use rn_autograd::{Graph, WorkerPool};
use rn_dataset::{generate, Dataset, GeneratorConfig, Sample, SampleQos};
use rn_netgraph::topologies;
use rn_netsim::{ClassStats, SchedulingPolicy, SimConfig, TrafficProfile};
use rn_nn::Layer;
use rn_tensor::Matrix;
use routenet::compose::{ComposedMegabatch, CompositionCache};
use routenet::entities::MegabatchPlan;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, QosRouteNet, SamplePlan};
use std::sync::Arc;

fn nsfnet_dataset(batch: usize, seed: u64) -> Dataset {
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::nsfnet_default(), &gen_config, seed, batch)
}

fn model_config(weight_seed: u64) -> ModelConfig {
    ModelConfig {
        state_dim: 16,
        mp_iterations: 3,
        readout_hidden: 16,
        seed: weight_seed,
        ..ModelConfig::default()
    }
}

/// Attach a single-class FIFO QoS spec: semantically the legacy scenario,
/// but it exercises the QoS branches of plan building and composition.
fn with_fifo_qos(sample: &Sample) -> Sample {
    let mut out = sample.clone();
    out.qos = Some(SampleQos {
        policy: SchedulingPolicy::Fifo,
        class_profiles: vec![TrafficProfile::Poisson],
        path_classes: vec![0; sample.targets.len()],
        class_targets: ClassStats::from_accumulators(
            &vec![Default::default(); sample.targets.len()],
            &vec![0; sample.targets.len()],
            1,
        ),
    });
    out
}

/// One fused forward + backward on the megabatch with the given worker pool
/// and tape index mode; returns the loss bits and every parameter gradient.
fn megabatch_step<M: PathPredictor>(
    model: &M,
    mb: &MegabatchPlan,
    pool: Option<Arc<WorkerPool>>,
    zero_copy: bool,
) -> (u32, Vec<Matrix>) {
    let mut g = Graph::new();
    g.set_zero_copy(zero_copy);
    g.set_worker_pool(pool);
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, &mb.plan);
    let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    g.backward(loss);
    (g.value(loss).get(0, 0).to_bits(), model.grads(&g, &bound))
}

fn prediction_bits<M: PathPredictor>(model: &M, mb: &MegabatchPlan) -> Vec<Vec<u64>> {
    let mut g = Graph::new();
    model
        .predict_megabatch_with(&mut g, mb)
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn qos_model_shares_parameter_bits_with_extended_at_equal_seed() {
    // The RNG-order contract behind every test in this file: the QoS model
    // draws its path/link/node GRUs and readout from the seed stream in the
    // extended model's exact order, the queue GRU only afterwards.
    let ext = ExtendedRouteNet::new(model_config(11));
    let qos = QosRouteNet::new(model_config(11));
    let ep = ext.params();
    let qp = qos.params();
    assert_eq!(
        qp.len(),
        ep.len() + 6,
        "queue GRU adds 3 kernels + 3 biases"
    );
    for (i, (e, q)) in ep.iter().zip(&qp).enumerate() {
        assert!(
            e.approx_eq(q, 0.0),
            "shared parameter {i} differs between extended and QoS models"
        );
    }
}

#[test]
fn fifo_only_batches_are_bitwise_identical_to_legacy_across_workers_and_index_modes() {
    let ds = nsfnet_dataset(4, 20_260_808);
    let mut ext = ExtendedRouteNet::new(model_config(11));
    let mut qos = QosRouteNet::new(model_config(11));
    ext.fit_preprocessing(&ds, 5);
    qos.fit_preprocessing(&ds, 5);

    // Mixed FIFO-only batch: half legacy samples, half degenerate-QoS
    // samples — both must land on the two-entity structure.
    let samples: Vec<Sample> = ds
        .samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i % 2 == 0 {
                with_fifo_qos(s)
            } else {
                s.clone()
            }
        })
        .collect();
    let plans_qos: Vec<SamplePlan> = samples.iter().map(|s| qos.plan(s)).collect();
    let plans_ext: Vec<SamplePlan> = ds.samples.iter().map(|s| ext.plan(s)).collect();
    let parts_qos: Vec<&SamplePlan> = plans_qos.iter().collect();
    let parts_ext: Vec<&SamplePlan> = plans_ext.iter().collect();

    // The degenerate QoS spec is structurally invisible: same composition
    // key, no queue entities anywhere in the composed batch.
    assert_eq!(
        CompositionCache::key_of(&parts_qos),
        CompositionCache::key_of(&parts_ext),
        "single-class FIFO QoS must not move the structure key"
    );
    let composed_qos = ComposedMegabatch::compose(&parts_qos).expect("compose QoS parts");
    let composed_ext = ComposedMegabatch::compose(&parts_ext).expect("compose legacy parts");
    assert_eq!(composed_qos.plan().num_queues, 0);

    // Predictions: bitwise across models and compose paths.
    assert_eq!(
        prediction_bits(&qos, composed_qos.megabatch()),
        prediction_bits(&ext, composed_ext.megabatch()),
        "FIFO-only predictions diverged from the two-entity baseline"
    );

    // Gradients: bitwise at every worker count, in both index modes (plus
    // whatever CI injects through the centralized env override). The queue
    // GRU must stay exactly zero — the loss never touches it.
    let mut worker_counts: Vec<Option<usize>> = vec![None, Some(1), Some(2), Some(4)];
    if let Some(extra) = routenet::TrainConfig::env_backward_shards() {
        if !worker_counts.contains(&Some(extra)) {
            worker_counts.push(Some(extra));
        }
    }
    let (loss_ref, grads_ref) = megabatch_step(&ext, composed_ext.megabatch(), None, false);
    for zero_copy in [false, true] {
        for workers in &worker_counts {
            let pool = workers.map(|w| Arc::new(WorkerPool::new(w)));
            let (loss_q, grads_q) =
                megabatch_step(&qos, composed_qos.megabatch(), pool.clone(), zero_copy);
            let (loss_e, grads_e) = megabatch_step(&ext, composed_ext.megabatch(), pool, zero_copy);
            assert_eq!(
                loss_q, loss_e,
                "loss bits diverged at {workers:?} workers, zero_copy={zero_copy}"
            );
            assert_eq!(loss_q, loss_ref, "loss bits diverged from inline reference");
            assert_eq!(grads_q.len(), grads_e.len() + 6);
            for (i, (e, q)) in grads_e.iter().zip(&grads_q).enumerate() {
                assert!(
                    e.approx_eq(q, 0.0),
                    "shared gradient {i} diverged at {workers:?} workers, zero_copy={zero_copy}"
                );
            }
            for (i, (r, q)) in grads_ref.iter().zip(&grads_q).enumerate() {
                assert!(r.approx_eq(q, 0.0), "gradient {i} diverged from inline");
            }
            for (i, m) in grads_q[grads_e.len()..].iter().enumerate() {
                assert_eq!(
                    m.max_abs(),
                    0.0,
                    "queue GRU gradient {i} is nonzero on a FIFO-only batch"
                );
            }
        }
    }
}

#[test]
fn fifo_only_single_sample_predictions_are_bitwise_identical() {
    // The per-sample (unbatched, unsharded) path — serving's cache-miss
    // fallback — must hold the same guarantee as the megabatch path.
    let ds = nsfnet_dataset(2, 909);
    let mut ext = ExtendedRouteNet::new(model_config(7));
    let mut qos = QosRouteNet::new(model_config(7));
    ext.fit_preprocessing(&ds, 5);
    qos.fit_preprocessing(&ds, 5);
    for sample in &ds.samples {
        let fifo = with_fifo_qos(sample);
        let plan_e = ext.plan(sample);
        let plan_q = qos.plan(&fifo);
        assert_eq!(plan_q.num_queues, 0);
        assert_eq!(qos.predict(&plan_q), ext.predict(&plan_e));
    }
}

#[test]
fn qos_batches_refill_bitwise_like_legacy_ones() {
    // The composition-cache contract extends to queue entities: a cached
    // QoS composition refilled with new features (including new queue_init
    // from a changed policy) matches a fresh build bitwise.
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        qos: Some(rn_dataset::QosGenConfig::two_class_mix()),
        ..GeneratorConfig::default()
    };
    let ds = generate(&topologies::nsfnet_default(), &gen_config, 4242, 3);
    let mut qos = QosRouteNet::new(model_config(3));
    qos.fit_preprocessing(&ds, 5);

    // Feature-only perturbation: swap every sample's policy for a WFQ with
    // different weights — same class count, so the structure key holds but
    // queue_init must be rewritten by the refill.
    let perturbed: Vec<Sample> = ds
        .samples
        .iter()
        .map(|s| {
            let mut out = s.clone();
            let q = out.qos.as_mut().expect("QoS sample");
            q.policy = SchedulingPolicy::Wfq {
                weights: (0..q.num_classes()).map(|c| 1.0 + 4.0 * c as f64).collect(),
            };
            out
        })
        .collect();
    let plans_a: Vec<SamplePlan> = ds.samples.iter().map(|s| qos.plan(s)).collect();
    let plans_b: Vec<SamplePlan> = perturbed.iter().map(|s| qos.plan(s)).collect();
    let parts_a: Vec<&SamplePlan> = plans_a.iter().collect();
    let parts_b: Vec<&SamplePlan> = plans_b.iter().collect();
    assert_eq!(
        CompositionCache::key_of(&parts_a),
        CompositionCache::key_of(&parts_b),
        "a policy swap at equal class count must not move the structure key"
    );
    assert!(
        !plans_a[0].queue_init.approx_eq(&plans_b[0].queue_init, 0.0),
        "the policy swap must actually change queue features"
    );

    let mut composed = ComposedMegabatch::compose(&parts_a).expect("compose");
    assert!(composed.plan().num_queues > 0);
    composed.refill_features(&parts_b);
    let fresh_b = ComposedMegabatch::compose(&parts_b).expect("compose fresh");
    assert_eq!(
        prediction_bits(&qos, composed.megabatch()),
        prediction_bits(&qos, fresh_b.megabatch()),
        "refilled QoS composition changed prediction bits"
    );
    for workers in [None, Some(2)] {
        let pool = workers.map(|w| Arc::new(WorkerPool::new(w)));
        let (loss_c, grads_c) = megabatch_step(&qos, composed.megabatch(), pool.clone(), false);
        let (loss_f, grads_f) = megabatch_step(&qos, fresh_b.megabatch(), pool, false);
        assert_eq!(loss_c, loss_f, "loss bits diverged at {workers:?} workers");
        for (i, (a, b)) in grads_c.iter().zip(&grads_f).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "gradient {i} diverged at {workers:?} workers"
            );
        }
    }
}
