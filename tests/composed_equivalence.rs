//! Golden bit-identity tests for the megabatch composition layer.
//!
//! The contract under test: a cached [`ComposedMegabatch`] whose features
//! were **refilled** for a new batch is bitwise identical to a fresh
//! `build_megabatch` over that batch — predictions AND gradients, at any
//! shard-worker count, and across model hot-swaps (same structure, new
//! preprocessing). Structure reuse must be invisible to the numerics; only
//! the planning cost may change.

use rn_autograd::{Graph, WorkerPool};
use rn_dataset::{generate, Dataset, GeneratorConfig, Sample};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use rn_tensor::Matrix;
use routenet::compose::{ComposedMegabatch, CompositionCache};
use routenet::entities::{build_megabatch, MegabatchPlan};
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use std::sync::Arc;

fn nsfnet_dataset(batch: usize, seed: u64) -> Dataset {
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    generate(&topologies::nsfnet_default(), &gen_config, seed, batch)
}

fn fitted_model(ds: &Dataset, weight_seed: u64) -> ExtendedRouteNet {
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 3,
        readout_hidden: 16,
        seed: weight_seed,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(ds, 5);
    model
}

/// Feature-only mutation: routing, topology and queue layout untouched, so
/// the per-sample structure fingerprints must not move. One sample also
/// loses a reliable label, so the refill path has to rewrite reliability
/// and loss weights, not just the feature matrices.
fn perturb_features(samples: &[Sample]) -> Vec<Sample> {
    let mut out: Vec<Sample> = samples.to_vec();
    for (i, s) in out.iter_mut().enumerate() {
        for c in &mut s.link_capacities {
            *c *= 1.0 + 0.05 * (i as f64 + 1.0);
        }
        for t in &mut s.targets {
            t.mean_delay_s *= 1.25;
        }
    }
    // Knock one label out entirely: reliable_idx (a feature) must shrink.
    out[0].targets[0].delivered = 0;
    out[0].targets[0].mean_delay_s = 0.0;
    out
}

/// One fused forward + backward on the megabatch with the given worker
/// pool; returns the loss bits and every parameter gradient.
fn megabatch_step(
    model: &ExtendedRouteNet,
    mb: &MegabatchPlan,
    pool: Option<Arc<WorkerPool>>,
) -> (u32, Vec<Matrix>) {
    let mut g = Graph::new();
    g.set_worker_pool(pool);
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, &mb.plan);
    let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    g.backward(loss);
    (g.value(loss).get(0, 0).to_bits(), model.grads(&g, &bound))
}

fn prediction_bits(model: &ExtendedRouteNet, mb: &MegabatchPlan) -> Vec<Vec<u64>> {
    let mut g = Graph::new();
    model
        .predict_megabatch_with(&mut g, mb)
        .iter()
        .map(|v| v.iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn cached_refill_is_bitwise_identical_to_fresh_build_across_shards() {
    let ds_a = nsfnet_dataset(4, 20_260_729);
    let model = fitted_model(&ds_a, 11);
    let plans_a: Vec<SamplePlan> = ds_a.samples.iter().map(|s| model.plan(s)).collect();
    let samples_b = perturb_features(&ds_a.samples);
    let plans_b: Vec<SamplePlan> = samples_b.iter().map(|s| model.plan(s)).collect();
    let parts_a: Vec<&SamplePlan> = plans_a.iter().collect();
    let parts_b: Vec<&SamplePlan> = plans_b.iter().collect();
    assert_eq!(
        CompositionCache::key_of(&parts_a),
        CompositionCache::key_of(&parts_b),
        "feature perturbation must not move the structure key"
    );
    assert_ne!(
        plans_a[0].reliable_idx, plans_b[0].reliable_idx,
        "the perturbation must change reliability, or refill is under-tested"
    );

    // Compose once from batch A, then refill for batch B — the cache-hit
    // path a serving worker takes.
    let mut composed = ComposedMegabatch::compose(&parts_a).expect("compose");
    composed.refill_features(&parts_b);
    let fresh_b = build_megabatch(&parts_b);

    // Predictions: bitwise across the refill.
    assert_eq!(
        prediction_bits(&model, composed.megabatch()),
        prediction_bits(&model, &fresh_b),
        "refilled composition changed prediction bits"
    );

    // Gradients: bitwise, at every shard-worker count (inline, 1, 2, 4 —
    // plus whatever CI injects through the centralized env override).
    let mut worker_counts: Vec<Option<usize>> = vec![None, Some(1), Some(2), Some(4)];
    if let Some(extra) = routenet::TrainConfig::env_backward_shards() {
        if !worker_counts.contains(&Some(extra)) {
            worker_counts.push(Some(extra));
        }
    }
    let (loss_ref, grads_ref) = megabatch_step(&model, &fresh_b, None);
    for workers in worker_counts {
        let pool = workers.map(|w| Arc::new(WorkerPool::new(w)));
        let (loss_fresh, grads_fresh) = megabatch_step(&model, &fresh_b, pool.clone());
        let (loss_cached, grads_cached) = megabatch_step(&model, composed.megabatch(), pool);
        assert_eq!(
            loss_fresh, loss_cached,
            "loss bits diverged at {workers:?} workers"
        );
        assert_eq!(loss_ref, loss_cached, "loss bits diverged from inline");
        assert_eq!(grads_fresh.len(), grads_cached.len());
        for (i, (a, b)) in grads_fresh.iter().zip(&grads_cached).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "gradient {i} diverged at {workers:?} workers"
            );
        }
        for (i, (a, b)) in grads_ref.iter().zip(&grads_cached).enumerate() {
            assert!(a.approx_eq(b, 0.0), "gradient {i} diverged from inline");
        }
    }

    // Round-trip: refilling back to batch A reproduces a fresh A bitwise.
    composed.refill_features(&parts_a);
    let fresh_a = build_megabatch(&parts_a);
    assert_eq!(
        prediction_bits(&model, composed.megabatch()),
        prediction_bits(&model, &fresh_a)
    );
}

#[test]
fn cached_refill_is_bitwise_identical_across_hot_swapped_models() {
    // The serving scenario: a composition cached under model v1 survives a
    // hot-swap (structure is preprocessing-independent) and is refilled
    // with plans compiled under v2's preprocessing. Results must carry v2's
    // exact bits.
    let ds = nsfnet_dataset(3, 777);
    let other = nsfnet_dataset(6, 778);
    let model_v1 = fitted_model(&ds, 1);
    // Same width, different weights AND different preprocessing (fitted on
    // a different dataset), so v2 plans differ in every feature.
    let model_v2 = fitted_model(&other, 2);
    assert_eq!(model_v2.config().state_dim, model_v1.config().state_dim);

    let plans_v1: Vec<SamplePlan> = ds.samples.iter().map(|s| model_v1.plan(s)).collect();
    let plans_v2: Vec<SamplePlan> = ds.samples.iter().map(|s| model_v2.plan(s)).collect();
    let parts_v1: Vec<&SamplePlan> = plans_v1.iter().collect();
    let parts_v2: Vec<&SamplePlan> = plans_v2.iter().collect();
    assert_eq!(
        CompositionCache::key_of(&parts_v1),
        CompositionCache::key_of(&parts_v2),
        "preprocessing changes must not move the structure key"
    );

    let mut composed = ComposedMegabatch::compose(&parts_v1).expect("compose under v1");
    composed.refill_features(&parts_v2);
    let fresh_v2 = build_megabatch(&parts_v2);
    assert_eq!(
        prediction_bits(&model_v2, composed.megabatch()),
        prediction_bits(&model_v2, &fresh_v2),
        "post-swap refill changed prediction bits"
    );
    let (loss_fresh, grads_fresh) = megabatch_step(&model_v2, &fresh_v2, None);
    let (loss_cached, grads_cached) = megabatch_step(&model_v2, composed.megabatch(), None);
    assert_eq!(loss_fresh, loss_cached);
    for (i, (a, b)) in grads_fresh.iter().zip(&grads_cached).enumerate() {
        assert!(a.approx_eq(b, 0.0), "post-swap gradient {i} diverged");
    }
}

#[test]
fn trainer_epochs_reuse_compositions_bitwise_across_shard_counts() {
    // End-to-end through the batch scheduler: multi-epoch training (epochs
    // >= 2 replay cached compositions; epoch visit order permutes) must
    // stay bitwise identical across backward_shards — the composition layer
    // cannot introduce worker-count dependence.
    use routenet::trainer::{train, TrainConfig};
    let ds = nsfnet_dataset(6, 775);
    let run = |backward_shards: usize| {
        let mut model = fitted_model(&ds, 5);
        let config = TrainConfig {
            epochs: 3,
            batch_size: 4,
            megabatch_size: 2,
            backward_shards,
            ..TrainConfig::default()
        };
        let history = train(&mut model, &ds, Some(&ds), &config);
        (history.final_train_loss(), history.val_loss.clone(), model)
    };
    let (loss_1, val_1, model_1) = run(1);
    let (loss_4, val_4, model_4) = run(4);
    assert_eq!(loss_1, loss_4, "epoch losses must match exactly");
    assert_eq!(val_1, val_4, "validation losses must match exactly");
    let plan = model_1.plan(&ds.samples[0]);
    assert_eq!(
        model_1.predict(&plan),
        model_4.predict(&plan),
        "trained weights must be bitwise identical across shard counts"
    );
}

#[test]
fn streaming_composition_trains_bitwise_identical_to_cached() {
    // The memory-bounded streaming mode (`TrainConfig::stream_compose`)
    // composes each batch one visit ahead, consumes it, and drops it —
    // nothing is cached across epochs, validation chunks included. The
    // contract: composition is a pure function of the plans and slices are
    // folded in the same fixed order either way, so streamed training is
    // bitwise identical to cached training — train/val losses AND trained
    // weights — at every worker count.
    use routenet::trainer::{train, TrainConfig};
    let ds = nsfnet_dataset(6, 776);
    let run = |stream_compose: bool, backward_shards: usize| {
        let mut model = fitted_model(&ds, 6);
        let config = TrainConfig {
            epochs: 3,
            batch_size: 4,
            megabatch_size: 2,
            backward_shards,
            stream_compose,
            ..TrainConfig::default()
        };
        let history = train(&mut model, &ds, Some(&ds), &config);
        (history.train_loss.clone(), history.val_loss.clone(), model)
    };
    let (train_cached, val_cached, model_cached) = run(false, 1);
    for workers in [1usize, 4] {
        let (train_s, val_s, model_s) = run(true, workers);
        assert_eq!(
            train_cached, train_s,
            "streamed train losses diverged at {workers} workers"
        );
        assert_eq!(
            val_cached, val_s,
            "streamed val losses diverged at {workers} workers"
        );
        let plan = model_cached.plan(&ds.samples[0]);
        assert_eq!(
            model_cached.predict(&plan),
            model_s.predict(&plan),
            "streamed weights diverged at {workers} workers"
        );
    }
}

#[test]
fn streaming_composition_slices_match_whole_batch_compose() {
    // The slices the streaming trainer consumes are produced by the same
    // `ComposedMegabatch::compose` the cached path uses — pin the direct
    // equivalence: composing a batch slice-at-a-time yields plans bitwise
    // identical to the retained whole-batch compositions.
    let ds = nsfnet_dataset(5, 777);
    let model = fitted_model(&ds, 7);
    let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
    let megabatch_size = 2;
    let whole: Vec<MegabatchPlan> = plans
        .chunks(megabatch_size)
        .map(|shard| {
            let parts: Vec<&SamplePlan> = shard.iter().collect();
            ComposedMegabatch::compose(&parts).unwrap().into_plan()
        })
        .collect();
    // Streamed: recompose each slice independently (as a later epoch of the
    // streaming trainer does) and compare bit for bit, forward included.
    for (si, shard) in plans.chunks(megabatch_size).enumerate() {
        let parts: Vec<&SamplePlan> = shard.iter().collect();
        let streamed = ComposedMegabatch::compose(&parts).unwrap();
        assert_eq!(
            prediction_bits(&model, &whole[si]),
            prediction_bits(&model, streamed.megabatch()),
            "slice {si}: streamed composition changed prediction bits"
        );
        assert_eq!(
            streamed.plan().reliable_idx,
            whole[si].plan.reliable_idx,
            "slice {si}: reliability diverged"
        );
        assert!(streamed
            .plan()
            .targets_norm
            .approx_eq(&whole[si].plan.targets_norm, 0.0));
    }
}

/// One fused training step with the tape's zero-copy mode pinned on or
/// off; returns the loss bits, parameter gradients, and how many index
/// words the tape copied while recording.
fn megabatch_step_pinned(
    model: &ExtendedRouteNet,
    mb: &MegabatchPlan,
    pool: Option<Arc<WorkerPool>>,
    zero_copy: bool,
) -> (u32, Vec<Matrix>, u64) {
    let mut g = Graph::new();
    g.set_zero_copy(zero_copy);
    g.set_worker_pool(pool);
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, &mb.plan);
    let reliable = if zero_copy {
        g.gather_rows_sharded(pred, mb.plan.reliable_idx_shared().into(), None)
    } else {
        g.gather_rows(pred, &mb.plan.reliable_idx)
    };
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    g.backward(loss);
    (
        g.value(loss).get(0, 0).to_bits(),
        model.grads(&g, &bound),
        g.index_words_copied(),
    )
}

#[test]
fn zero_copy_steps_are_bitwise_identical_and_copy_no_index_words() {
    // The zero-copy tape mode binds Arc-backed views of the cached
    // composition's index buffers instead of pooled copies. Two contracts:
    // (1) a full training step against a cached composition copies ZERO
    // index words — every gather/scatter/shard list is a refcount bump —
    // and (2) loss bits and every parameter gradient are bitwise identical
    // to the copying mode, at every worker count.
    let ds = nsfnet_dataset(4, 20_260_809);
    let model = fitted_model(&ds, 13);
    let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let composed = ComposedMegabatch::compose(&parts).expect("compose");
    let mb = composed.megabatch();

    let (loss_off, grads_off, copied_off) = megabatch_step_pinned(&model, mb, None, false);
    assert!(
        copied_off > 0,
        "the copying mode must actually count per-step index traffic"
    );

    for workers in [None, Some(1), Some(2), Some(4)] {
        let pool = workers.map(|w| Arc::new(WorkerPool::new(w)));
        let (loss_on, grads_on, copied_on) = megabatch_step_pinned(&model, mb, pool, true);
        assert_eq!(
            copied_on, 0,
            "zero-copy step copied index words at {workers:?} workers"
        );
        assert_eq!(
            loss_off, loss_on,
            "loss bits diverged from copying mode at {workers:?} workers"
        );
        assert_eq!(grads_off.len(), grads_on.len());
        for (i, (a, b)) in grads_off.iter().zip(&grads_on).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "gradient {i} diverged from copying mode at {workers:?} workers"
            );
        }
    }
}
