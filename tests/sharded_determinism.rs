//! Golden bit-identity tests for the sharded megabatch engine.
//!
//! The block-diagonal megabatch backward partitions its work into per-sample
//! shards; `Graph::set_worker_pool` fans those shards out to a persistent
//! worker gang. The contract under test: **gradients and forward values are
//! bitwise identical** whether the shards run inline (the sequential path)
//! or on 1, 2, 4 or 8 workers — the parallel backward reduces parameter
//! gradients in a fixed per-shard order, so scheduling cannot perturb a
//! single bit. The in-place inference path (GRU states and accumulators
//! updated in the input buffer instead of copied) is pinned the same way.
//!
//! CI runs this suite in release mode with `--test-threads 4` so the
//! determinism claims are exercised under real optimized concurrency; the
//! `RN_BACKWARD_SHARDS` env var injects an extra worker count.

use rn_autograd::{Graph, WorkerPool};
use rn_dataset::{generate, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use rn_tensor::Matrix;
use routenet::compose::ComposedMegabatch;
use routenet::entities::{build_megabatch, MegabatchPlan};
use routenet::model::PathPredictor;
use routenet::trainer::{train, TrainConfig};
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use std::sync::Arc;

/// Fixed-seed NSFNET scenario batch — the same topology family the paper
/// (and the training bench) uses.
fn nsfnet_setup(batch: usize) -> (ExtendedRouteNet, Vec<SamplePlan>) {
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(
        &topologies::nsfnet_default(),
        &gen_config,
        20_260_729,
        batch,
    );
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 3,
        readout_hidden: 16,
        seed: 11,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);
    let plans = ds.samples.iter().map(|s| model.plan(s)).collect();
    (model, plans)
}

/// One fused forward + backward over the megabatch on a tape with the given
/// worker pool; returns the loss bits and every parameter gradient.
fn megabatch_step(
    model: &ExtendedRouteNet,
    mb: &MegabatchPlan,
    pool: Option<Arc<WorkerPool>>,
) -> (f32, Vec<Matrix>) {
    let mut g = Graph::new();
    g.set_worker_pool(pool);
    let bound = model.bind(&mut g);
    let pred = model.forward(&mut g, &bound, &mb.plan);
    let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
    let target = g.constant(mb.plan.reliable_targets_norm());
    let loss = g.mse(reliable, target);
    g.backward(loss);
    (g.value(loss).get(0, 0), model.grads(&g, &bound))
}

/// Worker counts under test: the golden 1/2/4/8 ladder plus whatever the CI
/// job injects via `RN_BACKWARD_SHARDS` (read through the one centralized
/// helper so this suite, the trainer and the benches cannot drift).
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Some(extra) = TrainConfig::env_backward_shards() {
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

#[test]
fn sharded_backward_is_bitwise_identical_to_sequential() {
    let (model, plans) = nsfnet_setup(6);
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mb = build_megabatch(&parts);
    assert!(mb.plan.shards.is_some(), "6-sample megabatch must shard");

    // The sequential path: sharded canonical backward, no pool.
    let (loss_seq, grads_seq) = megabatch_step(&model, &mb, None);
    assert!(loss_seq.is_finite());
    assert!(!grads_seq.is_empty());

    for workers in worker_counts() {
        let pool = Arc::new(WorkerPool::new(workers));
        let (loss_par, grads_par) = megabatch_step(&model, &mb, Some(pool));
        assert_eq!(
            loss_seq.to_bits(),
            loss_par.to_bits(),
            "loss diverged at {workers} workers"
        );
        assert_eq!(grads_seq.len(), grads_par.len());
        for (i, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "parameter gradient {i} diverged at {workers} workers"
            );
        }
    }
}

/// Strip the dense row partitions from a megabatch plan, leaving only the
/// per-sample message-passing shards — the PR-3-era layout where the dense
/// link/node GRU updates and the readout MLP run sequentially.
fn strip_dense_shards(mb: &mut MegabatchPlan) {
    let shards = mb.plan.shards.as_mut().expect("sharded plan");
    shards.dense_path_bounds.clear();
    shards.dense_link_bounds.clear();
    shards.dense_node_bounds.clear();
}

#[test]
fn dense_sharded_backward_is_bitwise_identical_across_worker_counts() {
    // The fully-parallel backward: per-sample shards for the message
    // passing PLUS balanced dense row blocks for the link/node GRU updates
    // and the readout MLP. The dense partitions must actually be engaged,
    // and the gradients must stay bitwise identical to the sequential
    // canonical path at every worker count.
    let (model, plans) = nsfnet_setup(6);
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mb = build_megabatch(&parts);
    let shards = mb.plan.shards.as_ref().expect("sharded plan");
    assert!(
        shards.dense_path().is_some()
            && shards.dense_link().is_some()
            && shards.dense_node().is_some(),
        "megabatch plans must precompile dense row partitions"
    );

    let (loss_seq, grads_seq) = megabatch_step(&model, &mb, None);
    for workers in worker_counts() {
        let pool = Arc::new(WorkerPool::new(workers));
        let (loss_par, grads_par) = megabatch_step(&model, &mb, Some(pool));
        assert_eq!(
            loss_seq.to_bits(),
            loss_par.to_bits(),
            "dense-sharded loss diverged at {workers} workers"
        );
        for (i, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "dense-sharded gradient {i} diverged at {workers} workers"
            );
        }
    }

    // Against the dense-stripped plan (dense ops sequential, message
    // passing still sharded): the dense partial merge is a different —
    // equally canonical — float grouping, so gradients agree numerically
    // but need not share bits. Forward values must, though: dense forward
    // blocks compute each element with the full kernel's arithmetic.
    let mut mb_dense_seq = build_megabatch(&parts);
    strip_dense_shards(&mut mb_dense_seq);
    let (loss_nodense, grads_nodense) = megabatch_step(&model, &mb_dense_seq, None);
    assert_eq!(
        loss_seq.to_bits(),
        loss_nodense.to_bits(),
        "dense sharding must not change forward bits"
    );
    for (i, (a, b)) in grads_seq.iter().zip(&grads_nodense).enumerate() {
        let tol = 1e-4 * a.max_abs().max(1.0);
        assert!(
            a.approx_eq(b, tol),
            "gradient {i} diverged numerically between dense-sharded and dense-sequential"
        );
    }
}

#[test]
fn intra_sharded_single_sample_is_bitwise_identical_to_legacy() {
    // Single-sample plans historically skipped `PlanShards` entirely; with
    // `ComposedMegabatch::compose_with(parts, intra_shards)` they keep the
    // single-shard message-passing schedule and fan only the dense per-row
    // work out. The contract mirrors the dense megabatch one: forward bits
    // match the fully-unsharded legacy plan exactly (dense row blocks
    // compute each element with the full kernel's arithmetic), gradients
    // match it numerically (the dense backward folds per-shard partials — a
    // different, equally canonical float grouping), and within one
    // intra-sharded plan everything is bitwise invariant across worker
    // counts.
    let (model, plans) = nsfnet_setup(1);
    let parts: Vec<&SamplePlan> = vec![&plans[0]];
    let legacy = ComposedMegabatch::compose_with(&parts, 1)
        .unwrap()
        .into_plan();
    assert!(
        legacy.plan.shards.is_none(),
        "legacy plan must be unsharded"
    );
    let (loss_legacy, grads_legacy) = megabatch_step(&model, &legacy, None);
    assert!(loss_legacy.is_finite());

    for intra in [2, 4, 7] {
        let mb = ComposedMegabatch::compose_with(&parts, intra)
            .unwrap()
            .into_plan();
        let shards = mb.plan.shards.as_ref().expect("intra-sharded plan");
        assert_eq!(shards.len(), 1, "message passing stays one shard");
        assert!(
            shards.dense_path().is_some()
                && shards.dense_link().is_some()
                && shards.dense_node().is_some(),
            "dense partitions must engage at intra={intra}"
        );

        // Forward bits == legacy; gradients within float round-off of it.
        let (loss_seq, grads_seq) = megabatch_step(&model, &mb, None);
        assert_eq!(
            loss_legacy.to_bits(),
            loss_seq.to_bits(),
            "intra={intra}: dense sharding must not change forward bits"
        );
        assert_eq!(grads_legacy.len(), grads_seq.len());
        for (i, (a, b)) in grads_legacy.iter().zip(&grads_seq).enumerate() {
            let tol = 1e-4 * a.max_abs().max(1.0);
            assert!(
                a.approx_eq(b, tol),
                "intra={intra}: gradient {i} diverged numerically from legacy"
            );
        }

        // Scheduling invariance: bitwise identical at every worker count.
        for workers in worker_counts() {
            let pool = Arc::new(WorkerPool::new(workers));
            let (loss, grads) = megabatch_step(&model, &mb, Some(pool));
            assert_eq!(
                loss_seq.to_bits(),
                loss.to_bits(),
                "loss diverged at intra={intra}, {workers} workers"
            );
            for (i, (a, b)) in grads_seq.iter().zip(&grads).enumerate() {
                assert!(
                    a.approx_eq(b, 0.0),
                    "gradient {i} diverged at intra={intra}, {workers} workers"
                );
            }
        }
    }
}

#[test]
fn dense_stripped_backward_stays_bitwise_across_worker_counts() {
    // The per-sample-only layout (dense work sequential) remains its own
    // canonical path: bitwise invariant across worker counts, so older
    // plans or stripped configurations cannot lose determinism.
    let (model, plans) = nsfnet_setup(4);
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mut mb = build_megabatch(&parts);
    strip_dense_shards(&mut mb);
    let (loss_seq, grads_seq) = megabatch_step(&model, &mb, None);
    for workers in [2, 8] {
        let (loss_par, grads_par) =
            megabatch_step(&model, &mb, Some(Arc::new(WorkerPool::new(workers))));
        assert_eq!(loss_seq.to_bits(), loss_par.to_bits());
        for (i, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
            assert!(
                a.approx_eq(b, 0.0),
                "stripped grad {i} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_backward_is_reuse_stable_on_a_pooled_tape() {
    // A reused tape (pooled buffers, shard scratch recycled) must reproduce
    // the fresh tape's sharded gradients bit for bit, with and without
    // workers.
    let (model, plans) = nsfnet_setup(4);
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mb = build_megabatch(&parts);
    let (loss_fresh, grads_fresh) = megabatch_step(&model, &mb, None);

    let mut g = Graph::new();
    g.set_worker_pool(Some(Arc::new(WorkerPool::new(3))));
    for round in 0..3 {
        g.reset();
        let bound = model.bind(&mut g);
        let pred = model.forward(&mut g, &bound, &mb.plan);
        let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
        let target = g.constant(mb.plan.reliable_targets_norm());
        let loss = g.mse(reliable, target);
        g.backward(loss);
        assert_eq!(
            loss_fresh.to_bits(),
            g.value(loss).get(0, 0).to_bits(),
            "round {round} loss diverged"
        );
        for (i, (a, b)) in grads_fresh.iter().zip(&model.grads(&g, &bound)).enumerate() {
            assert!(a.approx_eq(b, 0.0), "round {round} grad {i} diverged");
        }
    }
}

#[test]
fn training_is_bitwise_identical_across_backward_shards() {
    // End-to-end: full training runs at backward_shards = 1 (inline) and 4
    // (parallel) must produce bitwise-identical models.
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 30.0,
            warmup_s: 5.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(&topologies::nsfnet_default(), &gen_config, 77, 6);
    let run = |backward_shards: usize| {
        let mut model = ExtendedRouteNet::new(ModelConfig {
            state_dim: 8,
            mp_iterations: 2,
            readout_hidden: 8,
            seed: 5,
            ..ModelConfig::default()
        });
        let config = TrainConfig {
            epochs: 2,
            batch_size: 6,
            megabatch_size: 3,
            backward_shards,
            ..TrainConfig::default()
        };
        let history = train(&mut model, &ds, None, &config);
        (history.final_train_loss(), model)
    };
    let (loss_inline, model_inline) = run(1);
    let (loss_parallel, model_parallel) = run(4);
    assert_eq!(
        loss_inline, loss_parallel,
        "epoch losses must match exactly"
    );
    let plan = model_inline.plan(&ds.samples[0]);
    assert_eq!(
        model_inline.predict(&plan),
        model_parallel.predict(&plan),
        "trained weights must be bitwise identical"
    );
}

#[test]
fn inplace_inference_is_bitwise_identical_to_copying_forward() {
    let (model, plans) = nsfnet_setup(4);
    let parts: Vec<&SamplePlan> = plans.iter().collect();
    let mb = build_megabatch(&parts);
    let (_, normalizer) = model.preprocessing();

    // Copying (training-mode) forward: states are copied each step.
    let copying: Vec<f64> = {
        let mut g = Graph::new();
        let bound = model.bind(&mut g);
        let pred = model.forward(&mut g, &bound, &mb.plan);
        g.value(pred)
            .as_slice()
            .iter()
            .map(|&v| normalizer.denormalize(v as f64))
            .collect()
    };

    // In-place (inference-mode) forward: states and accumulators are
    // advanced in the input buffers — megabatched and per-sample.
    let batched = model.predict_batch(&plans);
    let flat: Vec<f64> = batched.iter().flatten().copied().collect();
    assert_eq!(copying, flat, "in-place megabatch inference changed bits");

    // Per-sample in-place inference: a reused (pooled) tape must reproduce
    // a fresh tape bit for bit, and stay within float round-off of the
    // megabatched answer.
    let mut tape = Graph::new();
    for (b, plan) in plans.iter().enumerate() {
        let single = model.predict_with(&mut tape, plan);
        assert_eq!(single, model.predict(plan), "sample {b}: tape-reuse drift");
        for (x, y) in batched[b].iter().zip(&single) {
            let rel = (x - y).abs() / y.abs().max(1e-12);
            assert!(rel < 1e-5, "sample {b}: batched {x} vs single {y}");
        }
    }
}
