//! Integration: the models' behaviour must reflect the physics the simulator
//! implements — queue sizes matter to the extended model only, load raises
//! delay, and the analytical baseline agrees at low load.

use rn_dataset::{generate, Dataset, GeneratorConfig, QosGenConfig};
use rn_netgraph::{topologies, Routing, Topology, TrafficMatrix};
use rn_netsim::{
    simulate, simulate_qos, FaultPlan, QosSpec, SchedulingPolicy, SimConfig, TrafficProfile,
};
use rn_qtheory::{Mm1Priority, PathDelayPredictor};
use rn_tensor::Prng;
use routenet::model::PathPredictor;
use routenet::{train, ExtendedRouteNet, ModelConfig, OriginalRouteNet, QosRouteNet, TrainConfig};

fn tiny_gen_config() -> GeneratorConfig {
    GeneratorConfig {
        sim: SimConfig {
            duration_s: 120.0,
            warmup_s: 20.0,
            ..SimConfig::default()
        },
        utilization_range: (0.6, 1.0),
        ..GeneratorConfig::default()
    }
}

fn tiny_model_config() -> ModelConfig {
    ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        ..ModelConfig::default()
    }
}

#[test]
fn queue_visibility_splits_the_models() {
    let ds = generate(&topologies::toy5(), &tiny_gen_config(), 606, 8);
    let mut ext = ExtendedRouteNet::new(tiny_model_config());
    let mut orig = OriginalRouteNet::new(tiny_model_config());
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 4,
        ..TrainConfig::default()
    };
    train(&mut ext, &ds, None, &tc);
    train(&mut orig, &ds, None, &tc);

    let mut flipped = ds.samples[0].clone();
    flipped.queue_capacities = flipped
        .queue_capacities
        .iter()
        .map(|&c| if c <= 1 { 32 } else { 1 })
        .collect();

    let l1 = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>();
    let ext_delta = l1(
        &ext.predict(&ext.plan(&ds.samples[0])),
        &ext.predict(&ext.plan(&flipped)),
    );
    let orig_delta = l1(
        &orig.predict(&orig.plan(&ds.samples[0])),
        &orig.predict(&orig.plan(&flipped)),
    );
    assert!(
        orig_delta < 1e-9,
        "original must be blind to queue sizes, delta {orig_delta}"
    );
    assert!(ext_delta > 1e-6, "extended must react to queue sizes");
}

#[test]
fn simulator_vs_qtheory_multi_hop_shows_kleinrock_effect() {
    // A 4-hop line. Packets keep their size across hops, so per-hop service
    // times are positively correlated — the independence assumption behind
    // the M/M/1 decomposition fails (Kleinrock's caveat). The test pins both
    // facts: near-zero load the decomposition is accurate (waiting vanishes),
    // and at moderate load the *simulated* delay exceeds the decomposition —
    // the very inaccuracy the paper cites as motivation for learned models.
    let topo = rn_netgraph::Topology::from_undirected_edges(
        "line5",
        5,
        &[(0, 1), (1, 2), (2, 3), (3, 4)],
        10_000.0,
        0.0,
    );
    let routing = Routing::shortest_paths(&topo);
    let caps = vec![64usize; 5];
    let predictor = PathDelayPredictor::new(1_000.0);

    let run = |rate_bps: f64| -> (f64, f64) {
        let mut tm = TrafficMatrix::zeros(5);
        tm.set(0, 4, rate_bps);
        let config = SimConfig {
            duration_s: 4_000.0,
            warmup_s: 400.0,
            max_packet_bits: 50_000.0,
            seed: 5,
            ..SimConfig::default()
        };
        let sim = simulate(&topo, &routing, &tm, &caps, &config, &FaultPlan::none()).unwrap();
        let qt = predictor
            .predict(&topo, &routing, &tm, &caps)
            .into_iter()
            .find(|&(s, d, _)| (s, d) == (0, 4))
            .unwrap()
            .2;
        (sim.flow(0, 4).unwrap().mean_delay_s, qt)
    };

    // Near-zero load (rho = 0.02): waiting is dominated by packets bunching
    // behind their own flow's long packets — a small residual (<10%).
    let (sim_lo, qt_lo) = run(200.0);
    let rel_lo = (sim_lo - qt_lo).abs() / qt_lo;
    assert!(
        rel_lo < 0.10,
        "rho=0.02: sim {sim_lo:.4} vs theory {qt_lo:.4} (rel {rel_lo:.3})"
    );

    // Moderate load (rho = 0.1): correlated service inflates real delay
    // above the independence approximation, and the gap widens with load.
    let (sim_mid, qt_mid) = run(1_000.0);
    let rel_mid = (sim_mid - qt_mid).abs() / qt_mid;
    assert!(
        sim_mid > qt_mid,
        "service-time correlation must push simulated delay ({sim_mid:.4}) above the decomposition ({qt_mid:.4})"
    );
    assert!(
        rel_mid > rel_lo,
        "decomposition error must grow with load: {rel_lo:.3} at rho=0.02 vs {rel_mid:.3} at rho=0.1"
    );
    // ... but not absurdly so at this load.
    assert!(rel_mid < 0.5);
}

#[test]
fn heavier_traffic_raises_simulated_and_learned_delays() {
    // Train on scenarios spanning loads, then check the *model* ranks a
    // low-load variant of a sample below a high-load one, like the simulator.
    let topo = topologies::toy5();
    let ds = generate(&topo, &tiny_gen_config(), 707, 10);
    let mut model = ExtendedRouteNet::new(tiny_model_config());
    train(
        &mut model,
        &ds,
        None,
        &TrainConfig {
            epochs: 5,
            batch_size: 4,
            ..TrainConfig::default()
        },
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Take one sample and scale its traffic matrix down 5x.
    let heavy = ds.samples[0].clone();
    let mut light = heavy.clone();
    let n = topo.num_nodes();
    let mut light_tm = TrafficMatrix::zeros(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                light_tm.set(s, d, heavy.traffic.rate(s, d) / 5.0);
            }
        }
    }
    light.traffic = light_tm;
    let heavy_pred = mean(&model.predict(&model.plan(&heavy)));
    let light_pred = mean(&model.predict(&model.plan(&light)));
    assert!(
        light_pred < heavy_pred,
        "model must predict lower delays at 5x lighter load: light {light_pred} vs heavy {heavy_pred}"
    );
}

#[test]
fn evaluation_is_parallelism_invariant() {
    // rayon ordering must not affect evaluation results.
    let ds = generate(&topologies::toy5(), &tiny_gen_config(), 808, 6);
    let mut model = OriginalRouteNet::new(tiny_model_config());
    train(
        &mut model,
        &ds,
        None,
        &TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        },
    );
    let a = routenet::evaluate(&model, &ds, "toy5", 10);
    let b = routenet::evaluate(&model, &ds, "toy5", 10);
    assert_eq!(a.rel_errors, b.rel_errors);
}

/// Per-class aggregates of a prediction/label pair set: `(model_mean,
/// sim_mean, count)` per class, over reliable paths only.
fn per_class_means(
    ds: &Dataset,
    model: &QosRouteNet,
    num_classes: usize,
) -> Vec<(f64, f64, usize)> {
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); num_classes];
    for sample in &ds.samples {
        let qos = sample.qos.as_ref().expect("QoS sample");
        let preds = model.predict(&model.plan(sample));
        for (row, target) in sample.targets.iter().enumerate() {
            if target.delivered < 5 || target.mean_delay_s <= 0.0 {
                continue;
            }
            let c = qos.path_classes[row] as usize;
            sums[c].0 += preds[row];
            sums[c].1 += target.mean_delay_s;
            sums[c].2 += 1;
        }
    }
    sums.into_iter()
        .map(|(p, s, n)| (p / n.max(1) as f64, s / n.max(1) as f64, n))
        .collect()
}

#[test]
fn trained_qos_model_tracks_per_class_delays() {
    // The queue-entity validation harness (see docs/ARCHITECTURE.md):
    //
    // 1. **Model vs simulator** — a QoS model trained on scheduled scenarios
    //    must reproduce the simulator's *per-class* mean delays, not just the
    //    pooled mean. Documented tolerance: 35% per class on the in-sample
    //    aggregate (tiny model, tiny training budget — the bound is about
    //    ranking and scale, not convergence).
    // 2. **Simulator vs theory** — the strict-priority bottleneck checked
    //    against `Mm1Priority` (documented tolerance 20% at this shortened
    //    duration; the long-run 12% bound lives in rn_netsim's
    //    qos_theory_agreement suite).
    //
    // When `RN_QOS_VALIDATION_OUT` is set (the CI qos-validation job does),
    // the harness writes all three delay columns per class as a JSON report.
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 120.0,
            warmup_s: 20.0,
            ..SimConfig::default()
        },
        utilization_range: (0.5, 0.9),
        qos: Some(QosGenConfig::two_class_mix()),
        ..GeneratorConfig::default()
    };
    let ds = generate(&topologies::toy5(), &gen_config, 909, 14);
    let num_classes = ds.samples[0].qos.as_ref().unwrap().num_classes();
    let mut model = QosRouteNet::new(tiny_model_config());
    train(
        &mut model,
        &ds,
        None,
        &TrainConfig {
            epochs: 8,
            batch_size: 4,
            ..TrainConfig::default()
        },
    );

    let per_class = per_class_means(&ds, &model, num_classes);
    let mut model_vs_sim = Vec::new();
    for (c, &(model_mean, sim_mean, n)) in per_class.iter().enumerate() {
        assert!(n > 20, "class {c}: need statistics, got {n} paths");
        let rel = (model_mean - sim_mean).abs() / sim_mean;
        assert!(
            rel < 0.35,
            "class {c}: model mean {model_mean:.5}s vs sim mean {sim_mean:.5}s \
             (rel err {rel:.3} over {n} paths)"
        );
        model_vs_sim.push((c, model_mean, sim_mean, rel, n));
    }

    // Simulator vs theory on the controlled strict-priority bottleneck: the
    // 3-node line 0-1-2, flows (0,2) and (1,2) sharing the 1->2 port; flow
    // (1,2) crosses only that port, so its delay is one queue's sojourn.
    let mu = 10.0; // 10_000 bps links / 1_000-bit mean packets
    let lambda = 3.0;
    let theory = Mm1Priority::new(vec![lambda, lambda], mu);
    let topo = Topology::from_undirected_edges("line", 3, &[(0, 1), (1, 2)], 10_000.0, 0.0);
    let routing = Routing::shortest_paths(&topo);
    let mut tm = TrafficMatrix::zeros(3);
    tm.set(0, 2, lambda * 1_000.0);
    tm.set(1, 2, lambda * 1_000.0);
    let sim_config = SimConfig {
        duration_s: 6_000.0,
        warmup_s: 600.0,
        mean_packet_bits: 1_000.0,
        max_packet_bits: 100_000.0,
        standard_queue_pkts: 10_000,
        seed: 17,
    };
    let mut sim_vs_theory = Vec::new();
    for class in [0u8, 1u8] {
        // Flow order is routing order: (0,2) then (1,2).
        let spec = QosSpec {
            policy: SchedulingPolicy::StrictPriority,
            class_profiles: vec![TrafficProfile::Poisson, TrafficProfile::Poisson],
            flow_classes: vec![1 - class, class],
        };
        let r = simulate_qos(
            &topo,
            &routing,
            &tm,
            &[10_000, 10_000, 10_000],
            &sim_config,
            &FaultPlan::none(),
            &spec,
        )
        .unwrap();
        let sim = r.flow(1, 2).unwrap().mean_delay_s;
        let t = theory.nonpreemptive_sojourn_s(class as usize);
        let rel = (sim - t).abs() / t;
        assert!(
            rel < 0.20,
            "class {class}: sim {sim:.4}s vs theory {t:.4}s (rel err {rel:.3})"
        );
        sim_vs_theory.push((class as usize, sim, t, rel));
    }

    // The validation report the CI job archives.
    if let Ok(path) = std::env::var("RN_QOS_VALIDATION_OUT") {
        if !path.is_empty() {
            let model_rows: Vec<String> = model_vs_sim
                .iter()
                .map(|(c, m, s, rel, n)| {
                    format!(
                        "{{\"class\":{c},\"model_mean_delay_s\":{m},\
                         \"sim_mean_delay_s\":{s},\"rel_err\":{rel},\"paths\":{n}}}"
                    )
                })
                .collect();
            let theory_rows: Vec<String> = sim_vs_theory
                .iter()
                .map(|(c, sim, t, rel)| {
                    format!(
                        "{{\"class\":{c},\"sim_delay_s\":{sim},\
                         \"theory_delay_s\":{t},\"rel_err\":{rel}}}"
                    )
                })
                .collect();
            let report = format!(
                "{{\"harness\":\"qos_model_validation\",\
                 \"model_vs_simulator\":{{\"tolerance\":0.35,\"per_class\":[{}]}},\
                 \"simulator_vs_theory\":{{\"policy\":\"strict_priority\",\
                 \"tolerance\":0.20,\"per_class\":[{}]}}}}",
                model_rows.join(","),
                theory_rows.join(",")
            );
            std::fs::write(&path, report).expect("write QoS validation report");
        }
    }
}

#[test]
fn fifo_only_trained_qos_model_matches_the_two_entity_baseline() {
    // "No worse than the baseline" in its strongest form: on legacy
    // (FIFO-only) data the queue-entity model *is* the two-entity model —
    // training records identical tapes (no queue steps, zero queue
    // gradients, untouched Adam state for the queue GRU), so the trained
    // predictions are bitwise equal, not merely close.
    let ds = generate(&topologies::toy5(), &tiny_gen_config(), 606, 8);
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 4,
        ..TrainConfig::default()
    };
    let mut qos = QosRouteNet::new(tiny_model_config());
    let mut ext = ExtendedRouteNet::new(tiny_model_config());
    train(&mut qos, &ds, None, &tc);
    train(&mut ext, &ds, None, &tc);
    for sample in &ds.samples {
        assert_eq!(
            qos.predict(&qos.plan(sample)),
            ext.predict(&ext.plan(sample)),
            "trained FIFO-only QoS model diverged from the extended baseline"
        );
    }
}

#[test]
fn simulator_scenarios_with_tiny_queues_lose_more_under_load() {
    let topo = topologies::toy5();
    let mut rng = Prng::new(11);
    let routing = Routing::randomized(&topo, &mut rng);
    let tm = TrafficMatrix::with_target_utilization(&topo, &routing, &mut rng, 1.1);
    let config = SimConfig {
        duration_s: 300.0,
        warmup_s: 30.0,
        seed: 11,
        ..SimConfig::default()
    };
    let all_std = simulate(&topo, &routing, &tm, &[32; 5], &config, &FaultPlan::none()).unwrap();
    let all_tiny = simulate(&topo, &routing, &tm, &[1; 5], &config, &FaultPlan::none()).unwrap();
    assert!(
        all_tiny.loss_ratio() > all_std.loss_ratio(),
        "tiny queues must drop more: {} vs {}",
        all_tiny.loss_ratio(),
        all_std.loss_ratio()
    );
    assert!(
        all_tiny.mean_delay_s() < all_std.mean_delay_s(),
        "surviving packets queue less behind tiny buffers"
    );
}
