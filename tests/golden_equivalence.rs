//! Golden-equivalence regression tests.
//!
//! A fixed-seed `ExtendedRouteNet` evaluated on a fixed-seed `toy5` sample
//! must keep producing the predictions recorded in
//! `tests/fixtures/golden_toy5.json` to within 1e-5 relative error. This
//! pins the numerics of the fused hot path (tiled kernels, fast
//! transcendentals, fused GRU tape ops, block-diagonal megabatching): any
//! future perf work that silently changes model output fails here.
//!
//! Regenerate the fixture (only after an *intentional* numerics change) with:
//!
//! ```sh
//! RN_REGEN_GOLDEN=1 cargo test --test golden_equivalence
//! ```

use rn_autograd::Graph;
use rn_dataset::{generate, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig, SamplePlan};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_toy5.json")
}

/// The frozen scenario: seeds, sizes and dataset generation must not change,
/// or the fixture loses its meaning.
fn golden_setup() -> (ExtendedRouteNet, SamplePlan) {
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(&topologies::toy5(), &gen_config, 20_190_101, 1);
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 16,
        seed: 7,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);
    let plan = model.plan(&ds.samples[0]);
    (model, plan)
}

fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "prediction count changed");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / y.abs().max(1e-12))
        .fold(0.0, f64::max)
}

#[test]
fn predictions_match_recorded_fixture() {
    let (model, plan) = golden_setup();
    let predictions = model.predict(&plan);

    let path = fixture_path();
    if std::env::var("RN_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string(&predictions).unwrap();
        std::fs::write(&path, json).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with RN_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let recorded: Vec<f64> = serde_json::from_str(&text).unwrap();
    let worst = max_rel_diff(&predictions, &recorded);
    assert!(
        worst < 1e-5,
        "fused predictions drifted from the golden fixture: max rel diff {worst:e}"
    );
}

#[test]
fn fused_forward_matches_unfused_and_seed_reference() {
    let (model, plan) = golden_setup();
    let fused = model.predict(&plan);

    // Unfused op-by-op forward with the production (fast) kernels.
    let mut g = Graph::new();
    let (_, normalizer) = model.preprocessing();
    let bound = Layer::bind(&model, &mut g);
    let pred = model.forward_unfused(&mut g, &bound, &plan);
    let unfused: Vec<f64> = g
        .value(pred)
        .as_slice()
        .iter()
        .map(|&v| normalizer.denormalize(v as f64))
        .collect();
    let worst = max_rel_diff(&fused, &unfused);
    assert!(worst < 1e-5, "fused vs unfused forward diverged: {worst:e}");

    // Seed-faithful reference mode: naive kernels + libm transcendentals.
    let mut g_ref = Graph::new();
    g_ref.set_reference_mode(true);
    let bound_ref = Layer::bind(&model, &mut g_ref);
    let pred_ref = model.forward_unfused(&mut g_ref, &bound_ref, &plan);
    let reference: Vec<f64> = g_ref
        .value(pred_ref)
        .as_slice()
        .iter()
        .map(|&v| normalizer.denormalize(v as f64))
        .collect();
    let worst_ref = max_rel_diff(&fused, &reference);
    assert!(
        worst_ref < 1e-5,
        "fused vs seed-reference forward diverged: {worst_ref:e}"
    );
}

#[test]
fn megabatched_forward_matches_per_sample_forward() {
    let gen_config = GeneratorConfig {
        sim: SimConfig {
            duration_s: 60.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        },
        ..GeneratorConfig::default()
    };
    let ds = generate(&topologies::toy5(), &gen_config, 20_190_102, 4);
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 4,
        readout_hidden: 16,
        seed: 7,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);
    let plans: Vec<SamplePlan> = ds.samples.iter().map(|s| model.plan(s)).collect();
    let batched = model.predict_batch(&plans);
    for (b, plan) in plans.iter().enumerate() {
        let single = model.predict(plan);
        let worst = max_rel_diff(&batched[b], &single);
        assert!(
            worst < 1e-5,
            "sample {b}: megabatch diverged from per-sample: {worst:e}"
        );
    }
}

#[test]
fn prediction_is_deterministic_within_build() {
    let (model, plan) = golden_setup();
    let a = model.predict(&plan);
    let b = model.predict(&plan);
    assert_eq!(a, b, "same plan, same build must give bitwise-equal output");
}
