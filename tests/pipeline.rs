//! End-to-end integration: simulator → dataset → training → evaluation →
//! persistence, across every crate in the workspace.
//!
//! Scales are kept tiny (toy5 topology, few samples/epochs) so the whole file
//! runs in seconds even in debug builds.

use rn_dataset::{generate, train_test_split, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_tensor::Prng;
use routenet::model::PathPredictor;
use routenet::persist::{load_model, save_model};
use routenet::{evaluate, train, ExtendedRouteNet, ModelConfig, OriginalRouteNet, TrainConfig};

fn tiny_gen_config() -> GeneratorConfig {
    GeneratorConfig {
        sim: SimConfig {
            duration_s: 120.0,
            warmup_s: 20.0,
            ..SimConfig::default()
        },
        utilization_range: (0.6, 1.0),
        ..GeneratorConfig::default()
    }
}

fn tiny_model_config() -> ModelConfig {
    ModelConfig {
        state_dim: 8,
        mp_iterations: 2,
        readout_hidden: 8,
        ..ModelConfig::default()
    }
}

fn tiny_train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 4,
        ..TrainConfig::default()
    }
}

#[test]
fn full_pipeline_runs_and_improves_over_training() {
    let dataset = generate(&topologies::toy5(), &tiny_gen_config(), 101, 12);
    dataset.validate().expect("generated dataset must validate");
    let (train_set, test_set) = train_test_split(dataset, 0.75, &mut Prng::new(1));

    let mut model = ExtendedRouteNet::new(tiny_model_config());
    let history = train(&mut model, &train_set, None, &tiny_train_config(6));
    assert!(
        history.final_train_loss() < history.train_loss[0],
        "training must reduce loss: {:?}",
        history.train_loss
    );

    let report = evaluate(&model, &test_set, "toy5", 10);
    assert!(report.num_paths() > 0);
    assert!(report.mae_s.is_finite());
    assert!(report.median_abs_rel().is_finite());
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let dataset = generate(&topologies::toy5(), &tiny_gen_config(), 202, 8);
        let (train_set, test_set) = train_test_split(dataset, 0.75, &mut Prng::new(2));
        let mut model = OriginalRouteNet::new(tiny_model_config());
        train(&mut model, &train_set, None, &tiny_train_config(3));
        let report = evaluate(&model, &test_set, "toy5", 10);
        (report.mae_s, report.median_abs_rel())
    };
    assert_eq!(run(), run(), "same seeds must give bit-identical pipelines");
}

#[test]
fn trained_model_survives_disk_round_trip_with_identical_predictions() {
    let dataset = generate(&topologies::toy5(), &tiny_gen_config(), 303, 6);
    let mut model = ExtendedRouteNet::new(tiny_model_config());
    train(&mut model, &dataset, None, &tiny_train_config(3));

    let path = std::env::temp_dir().join(format!("rn_it_model_{}.json", std::process::id()));
    save_model(&model, &path).unwrap();
    let reloaded: ExtendedRouteNet = load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();

    for sample in &dataset.samples {
        let a = model.predict(&model.plan(sample));
        let b = reloaded.predict(&reloaded.plan(sample));
        assert_eq!(a, b, "reloaded model must be indistinguishable");
    }
}

#[test]
fn dataset_round_trips_through_disk_into_training() {
    let dataset = generate(&topologies::toy5(), &tiny_gen_config(), 404, 6);
    let path = std::env::temp_dir().join(format!("rn_it_ds_{}.jsonl", std::process::id()));
    rn_dataset::io::save_jsonl(&dataset, &path).unwrap();
    let reloaded = rn_dataset::io::load_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();
    reloaded.validate().unwrap();

    // Training on the reloaded dataset must match training on the original.
    let mut a = OriginalRouteNet::new(tiny_model_config());
    let mut b = OriginalRouteNet::new(tiny_model_config());
    let ha = train(&mut a, &dataset, None, &tiny_train_config(2));
    let hb = train(&mut b, &reloaded, None, &tiny_train_config(2));
    assert_eq!(ha.train_loss, hb.train_loss);
}

#[test]
fn models_generalize_across_topologies_structurally() {
    // A model trained on toy5 must *run* (not necessarily excel) on Abilene:
    // nothing in the architecture is tied to one graph.
    let train_ds = generate(&topologies::toy5(), &tiny_gen_config(), 505, 6);
    let other_ds = generate(&topologies::abilene_default(), &tiny_gen_config(), 506, 2);
    let mut model = ExtendedRouteNet::new(tiny_model_config());
    train(&mut model, &train_ds, None, &tiny_train_config(2));
    let report = evaluate(&model, &other_ds, "abilene", 10);
    assert!(report.num_paths() > 0);
    assert!(report.rel_errors.iter().all(|e| e.is_finite()));
}
