//! Tracing-off overhead smoke test: with `RN_TRACE` unset every span in
//! the hot path costs one relaxed atomic load and an `Option` branch —
//! no clock read, no allocation. This pins that claim end-to-end: the
//! measured unit cost of a disabled span, multiplied by a bound on spans
//! per training step far above what the trainer and tape actually place,
//! must stay under 2% of a measured training-step time.
//!
//! The per-unit formulation is deliberate: differencing two full step
//! timings (traced-off vs untraced build) cannot resolve a sub-percent
//! effect on a shared runner, while the unit cost × generous count is a
//! strict upper bound on the same quantity and is stable.

use rn_autograd::Graph;
use rn_dataset::{generate, GeneratorConfig};
use rn_netgraph::topologies;
use rn_netsim::SimConfig;
use rn_nn::Layer;
use routenet::entities::build_megabatch;
use routenet::model::PathPredictor;
use routenet::{ExtendedRouteNet, ModelConfig};
use std::hint::black_box;
use std::time::Instant;

/// Slack multiplier on the measured spans-per-step count: the trainer
/// places five stage spans per step and the backward sweep one `OpSpan`
/// per tape node, so `tape_len + 5` is already exact — 8x covers any
/// future instrumentation of the forward pass and then some.
const SPAN_COUNT_SLACK: f64 = 8.0;

#[test]
fn disabled_tracing_overhead_is_under_two_percent_of_a_training_step() {
    if cfg!(debug_assertions) {
        eprintln!("trace_overhead: skipped in debug builds (release-only smoke test)");
        return;
    }
    rn_trace::set_enabled(false);

    // Unit cost of a disabled span: median of several tight loops.
    let recorder = rn_trace::StageRecorder::new(&["probe"]);
    let unit_ns = {
        let mut runs = Vec::new();
        for _ in 0..5 {
            const N: u32 = 1_000_000;
            let t = Instant::now();
            for _ in 0..N {
                black_box(recorder.span(black_box(0)));
            }
            runs.push(t.elapsed().as_secs_f64() * 1e9 / f64::from(N));
        }
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };

    // A real training step at the test suite's toy scale: fused megabatch
    // forward + backward, median of a few repetitions.
    let ds = generate(
        &topologies::nsfnet_default(),
        &GeneratorConfig {
            sim: SimConfig {
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
            ..GeneratorConfig::default()
        },
        20_260_808,
        4,
    );
    let mut model = ExtendedRouteNet::new(ModelConfig {
        state_dim: 16,
        mp_iterations: 3,
        readout_hidden: 16,
        seed: 3,
        ..ModelConfig::default()
    });
    model.fit_preprocessing(&ds, 5);
    let plans: Vec<_> = ds.samples.iter().map(|s| model.plan(s)).collect();
    let plan_refs: Vec<_> = plans.iter().collect();
    let mb = build_megabatch(&plan_refs);
    let mut tape_len = 0usize;
    let step_ns = {
        let mut runs = Vec::new();
        for _ in 0..5 {
            let t = Instant::now();
            let mut g = Graph::new();
            let bound = model.bind(&mut g);
            let pred = model.forward(&mut g, &bound, &mb.plan);
            let reliable = g.gather_rows(pred, &mb.plan.reliable_idx);
            let target = g.constant(mb.plan.reliable_targets_norm());
            let loss = g.mse(reliable, target);
            g.backward(loss);
            black_box(g.value(loss));
            runs.push(t.elapsed().as_secs_f64() * 1e9);
            tape_len = g.len();
        }
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };

    // One OpSpan per tape node in the backward sweep, five trainer stage
    // spans per step, times the slack factor.
    let spans_per_step = (tape_len as f64 + 5.0) * SPAN_COUNT_SLACK;
    let overhead_pct = unit_ns * spans_per_step / step_ns * 100.0;
    eprintln!(
        "trace_overhead: disabled span {unit_ns:.2} ns, step {:.2} ms \
         ({tape_len} tape nodes), bounded overhead {overhead_pct:.3}% (limit 2%)",
        step_ns / 1e6
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-tracing overhead bound {overhead_pct:.3}% exceeds 2% \
         (span {unit_ns:.2} ns x {spans_per_step} spans vs step {step_ns:.0} ns)"
    );
}
