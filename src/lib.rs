//! # routenet-repro
//!
//! Umbrella crate for the reproduction of *"Towards more realistic network models
//! based on Graph Neural Networks"* (Badia-Sampera et al., CoNEXT 2019).
//!
//! This crate re-exports the public surfaces of every workspace member so the
//! examples and integration tests can exercise the whole pipeline through a single
//! dependency. Downstream users should normally depend on the individual crates:
//!
//! - [`rn_tensor`] — dense f32 matrices, RNG and statistics.
//! - [`rn_autograd`] — tape-based reverse-mode automatic differentiation.
//! - [`rn_nn`] — neural-network layers (GRU, MLP), losses and optimizers.
//! - [`rn_netgraph`] — network topologies, routing schemes and traffic matrices.
//! - [`rn_netsim`] — the packet-level discrete-event simulator (ground truth).
//! - [`rn_qtheory`] — analytical M/M/1(/K) baselines.
//! - [`rn_dataset`] — dataset schema, generation, normalization and IO.
//! - [`routenet`] — the paper's contribution: original and extended RouteNet.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.

pub use rn_autograd as autograd;
pub use rn_dataset as dataset;
pub use rn_netgraph as netgraph;
pub use rn_netsim as netsim;
pub use rn_nn as nn;
pub use rn_qtheory as qtheory;
pub use rn_tensor as tensor;
pub use routenet as model;
